"""The differential fuzzer: generation, checking, probes, shrinking, repros.

The expensive end-to-end property (hundreds of random cases) lives in the
CI smoke job; here we pin the machinery — deterministic generation, a clean
seeded mini-campaign, probe tripwires for the satellite bugs this PR fixes,
and the shrinker producing a minimal, replayable JSON repro from an
injected fault.
"""

import json

import numpy as np
import pytest

from repro.errors import SelfCheckError
from repro.selfcheck.fuzz import (
    FuzzCase,
    check_case,
    load_repro,
    random_case,
    replay,
    run_fuzz,
    run_probes,
    save_repro,
    shrink_case,
)

SEED = 20260805


class TestGeneration:
    def test_deterministic_for_a_seed(self):
        a, b = random_case(SEED), random_case(SEED)
        assert a == b

    def test_cases_are_valid(self):
        for i in range(30):
            case = random_case(SEED + i)
            dfa = case.dfa()  # constructor validates the table
            assert len(case.input) >= case.n_threads
            assert max(case.input) < dfa.n_symbols
            assert max(case.training) < dfa.n_symbols
            if case.segments:
                assert sum(case.segments) == len(case.input)
                assert min(case.segments) >= case.n_threads

    def test_round_trips_through_json(self, tmp_path):
        case = random_case(SEED)
        restored = FuzzCase.from_dict(json.loads(case.to_json()))
        assert restored == case
        assert restored.dfa() == case.dfa()


class TestChecking:
    def test_seeded_mini_campaign_is_clean(self):
        for i in range(25):
            case = random_case(SEED + i)
            assert check_case(case) is None, (i, case.scheme, case.backend)

    def test_probes_pass_on_fixed_code(self):
        assert run_probes() == []

    def test_probes_catch_reverted_t_comm(self, monkeypatch):
        from repro.selector.cost_model import CostModel

        monkeypatch.setattr(
            CostModel,
            "t_comm",
            lambda self, k: float(self.device.comm_cycles) * max(1, k) / max(1, k),
        )
        assert any("t_comm" in f for f in run_probes())

    def test_probes_catch_reverted_backend_validation(self, monkeypatch):
        import repro.engine.fast as fast_mod
        import repro.gpu.executor as exec_mod

        monkeypatch.setattr(
            fast_mod, "validate_batch_inputs", lambda *a, **k: None
        )
        monkeypatch.setattr(
            exec_mod, "validate_batch_inputs", lambda *a, **k: None
        )
        failures = run_probes()
        assert any("IndexError" in f or "silently" in f or "wraparound" in f
                   for f in failures)

    def test_probes_catch_reverted_nan_contract(self, monkeypatch):
        from repro.framework import throughput as tp

        monkeypatch.setattr(
            tp.BatchResult,
            "latency_cycles",
            property(lambda self: self.stats.cycles),
        )
        assert any("NaN" in f for f in run_probes())

    def test_run_fuzz_raises_selfcheck_error_on_probe_failure(self, monkeypatch):
        from repro.selector.cost_model import CostModel

        monkeypatch.setattr(CostModel, "t_comm", lambda self, k: 35.0)
        with pytest.raises(SelfCheckError) as exc:
            run_fuzz(iterations=1, seed=SEED)
        assert exc.value.invariant == "probes"


class TestShrinking:
    @pytest.fixture()
    def broken_fast_backend(self, monkeypatch):
        """Inject an answer corruption that needs chunks longer than 30."""
        from repro.engine.fast import FastBackend

        orig = FastBackend.run_batch

        def bad(self, chunks, starts, **kw):
            out = orig(self, chunks, starts, **kw)
            if chunks.shape[1] > 30:
                out = out.copy()
                out[0] = (int(out[0]) + 1) % self.n_states
            return out

        monkeypatch.setattr(FastBackend, "run_batch", bad)

    def test_fuzz_finds_shrinks_and_saves(self, broken_fast_backend, tmp_path):
        path = run_fuzz(
            iterations=40,
            seed=1,
            out_dir=tmp_path,
            backends=("fast",),
            probes=False,
        )
        assert path is not None and path.exists()
        payload = json.loads(path.read_text())
        assert "message" in payload and payload["message"]
        case = load_repro(path)
        # Shrunk: small thread count, bounded input, one-shot.
        assert case.n_threads <= 4
        assert not case.segments
        assert len(case.input) <= 200
        # The shrunk case still reproduces while the fault is injected…
        assert replay(path) is not None

    def test_repro_stops_failing_once_fixed(self, tmp_path):
        # …and the same repro goes quiet on healthy code.
        case = random_case(SEED + 3)
        failure = shrink_case(case, check=lambda c: None, max_checks=5)
        path = save_repro(failure, tmp_path)
        assert replay(path) is None

    def test_shrink_respects_n_threads_floor(self, monkeypatch):
        # A checker that always fails: shrinking must never produce an
        # input shorter than the thread count (an invalid case).
        case = random_case(SEED + 7)
        failure = shrink_case(case, check=lambda c: "always fails", max_checks=60)
        assert len(failure.case.input) >= failure.case.n_threads


class TestWrongAnswerDetection:
    def test_audit_catches_recovery_corruption(self, monkeypatch):
        """End-to-end: a corrupted verification record is caught by the
        in-run audit, so check_case reports it as a selfcheck violation."""
        from repro.speculation.records import VRStore

        orig = VRStore.lookup

        def bad(self, chunk, start):
            hit = orig(self, chunk, start)
            if hit is not None and chunk % 2 == 1:
                return (hit + 1) % 1_000_000  # wrong, possibly out of range
            return hit

        monkeypatch.setattr(VRStore, "lookup", bad)
        messages = []
        for i in range(20):
            case = random_case(SEED + i, schemes=("sre", "rr", "nf"))
            msg = check_case(case)
            if msg:
                messages.append(msg)
        assert messages, "no case tripped on corrupted recovery records"
        assert any("selfcheck" in m or "oracle" in m for m in messages)
