"""The invariant-audit layer: enablement plumbing and violation detection.

Positive direction: audits stay silent on every correct scheme × backend.
Negative direction: corrupting each audited structure (end state, chunk
chain, VR capacity, queue cursor, ledger tiling, frontier round) raises a
:class:`SelfCheckError` naming that invariant — the audits actually look.
"""

import numpy as np
import pytest

from repro.errors import SelfCheckError
from repro.framework import GSpecPal, GSpecPalConfig
from repro.schemes import SREScheme
from repro.schemes.base import Scheme
from repro.selfcheck import SELFCHECK_ENV_VAR, audit_scheme_run, selfcheck_enabled
from tests.conftest import random_stream

ALL_SCHEMES = ("pm", "sre", "rr", "nf", "sfa", "seq", "spec-seq")


# ----------------------------------------------------------------------
# enablement plumbing
# ----------------------------------------------------------------------
class TestEnablement:
    def test_env_var_controls_default(self, monkeypatch):
        monkeypatch.delenv(SELFCHECK_ENV_VAR, raising=False)
        assert not selfcheck_enabled()
        for value in ("1", "true", "YES", "On"):
            monkeypatch.setenv(SELFCHECK_ENV_VAR, value)
            assert selfcheck_enabled()
        monkeypatch.setenv(SELFCHECK_ENV_VAR, "0")
        assert not selfcheck_enabled()

    def test_explicit_flag_beats_env(self, monkeypatch):
        monkeypatch.setenv(SELFCHECK_ENV_VAR, "1")
        assert not selfcheck_enabled(False)
        monkeypatch.delenv(SELFCHECK_ENV_VAR, raising=False)
        assert selfcheck_enabled(True)

    def test_scheme_picks_up_env(self, scanner_dfa, rng, monkeypatch):
        training = random_stream(rng, 128)
        monkeypatch.setenv(SELFCHECK_ENV_VAR, "1")
        scheme = SREScheme.for_dfa(
            scanner_dfa, n_threads=4, training_input=training
        )
        assert scheme.selfcheck

    def test_config_flag_overrides_env(self, scanner_dfa, rng, monkeypatch):
        training = random_stream(rng, 128)
        monkeypatch.setenv(SELFCHECK_ENV_VAR, "1")
        pal = GSpecPal(
            scanner_dfa,
            GSpecPalConfig(n_threads=4, selfcheck=False),
            training_input=training,
        )
        assert not pal.build_scheme("sre").selfcheck
        monkeypatch.delenv(SELFCHECK_ENV_VAR, raising=False)
        pal = GSpecPal(
            scanner_dfa,
            GSpecPalConfig(n_threads=4, selfcheck=True),
            training_input=training,
        )
        assert pal.build_scheme("sre").selfcheck

    def test_every_scheme_run_is_wrapped_once(self):
        for cls in Scheme.__subclasses__():
            run = cls.__dict__.get("run")
            if run is not None:
                assert getattr(run, "_selfcheck_wrapped", False), cls


# ----------------------------------------------------------------------
# audits pass on correct executions
# ----------------------------------------------------------------------
class TestCleanRuns:
    @pytest.mark.parametrize("backend", ["sim", "fast"])
    @pytest.mark.parametrize("scheme", ALL_SCHEMES)
    def test_audited_run_matches_oracle(self, scanner_dfa, rng, scheme, backend):
        training = random_stream(rng, 200)
        data = random_stream(rng, 500)
        pal = GSpecPal(
            scanner_dfa,
            GSpecPalConfig(n_threads=8, selfcheck=True, backend=backend),
            training_input=training,
        )
        result = pal.run(data, scheme=scheme)
        assert result.end_state == scanner_dfa.run(data)

    def test_audited_run_from_carried_state(self, rotator, rng):
        training = random_stream(rng, 128, lo=0, hi=64)
        data = np.asarray(rng.integers(0, 64, size=300), dtype=np.int64)
        pal = GSpecPal(
            rotator,
            GSpecPalConfig(n_threads=4, selfcheck=True),
            training_input=training,
        )
        session = pal.stream(scheme="rr")
        session.feed(data[:150])
        session.feed(data[150:])
        assert session.state == rotator.run(data)

    def test_stash_cleared_after_run(self, scanner_dfa, rng):
        training = random_stream(rng, 128)
        pal = GSpecPal(
            scanner_dfa,
            GSpecPalConfig(n_threads=4, selfcheck=True),
            training_input=training,
        )
        scheme = pal.build_scheme("sre")
        scheme.run(random_stream(rng, 100))
        assert scheme._audit_stash is None


# ----------------------------------------------------------------------
# audits catch corruption, naming the invariant
# ----------------------------------------------------------------------
def _audited_scheme(dfa, rng, name="sre", n_threads=4):
    # Pinned to the sim backend so the cycle-gated checks (ledger tiling)
    # are live regardless of the REPRO_BACKEND default.
    training = random_stream(rng, 128)
    pal = GSpecPal(
        dfa,
        GSpecPalConfig(n_threads=n_threads, selfcheck=True, backend="sim"),
        training_input=training,
    )
    return pal.build_scheme(name)


class TestViolationsDetected:
    def test_wrong_end_state_raises(self, scanner_dfa, rng):
        scheme = _audited_scheme(scanner_dfa, rng)
        data = random_stream(rng, 200)
        result = scheme.run(data)  # clean run, audited
        bad = result
        bad.end_state = (result.end_state + 1) % scanner_dfa.n_states
        with pytest.raises(SelfCheckError) as exc:
            audit_scheme_run(scheme, data, None, bad)
        assert exc.value.invariant == "end_state_oracle"
        assert exc.value.scheme == "sre"
        assert exc.value.backend in ("sim", "fast")

    def test_wrong_chunk_end_names_lane(self, scanner_dfa, rng):
        scheme = _audited_scheme(scanner_dfa, rng)
        data = random_stream(rng, 200)
        result = scheme.run(data)
        result.chunk_ends = np.asarray(result.chunk_ends).copy()
        result.chunk_ends[2] = (result.chunk_ends[2] + 1) % scanner_dfa.n_states
        with pytest.raises(SelfCheckError) as exc:
            audit_scheme_run(scheme, data, None, result)
        assert exc.value.invariant == "chunk_end_chain"
        assert 2 in exc.value.lanes

    def test_vr_overflow_raises(self, scanner_dfa, rng):
        from repro.speculation.records import VRRecord, VRStore

        scheme = _audited_scheme(scanner_dfa, rng)
        data = random_stream(rng, 200)
        result = scheme.run(data)
        vr = VRStore(n_chunks=4, own_capacity=1, others_capacity=0)
        # Bypass add()'s capacity enforcement — the bug class the audit exists for.
        vr._records[1].extend(
            [VRRecord(start=s, end=0, own=True) for s in range(3)]
        )
        scheme._audit_stash = {"vr": vr}
        with pytest.raises(SelfCheckError) as exc:
            audit_scheme_run(scheme, data, None, result)
        assert exc.value.invariant == "vr_capacity"
        assert exc.value.lanes == [1]
        scheme._audit_stash = None

    def test_queue_overrun_raises(self, scanner_dfa, rng):
        scheme = _audited_scheme(scanner_dfa, rng)
        data = random_stream(rng, 200)
        result = scheme.run(data)
        partition = scheme._partition(np.frombuffer(data, dtype=np.uint8))
        stats = scheme.sim.new_stats(n_threads=4)
        prediction = scheme._predict(partition, stats)
        prediction.queues[3]._cursor = prediction.queues[3].states.size + 5
        scheme._audit_stash = {"prediction": prediction}
        with pytest.raises(SelfCheckError) as exc:
            audit_scheme_run(scheme, data, None, result)
        assert exc.value.invariant == "queue_accounting"
        assert exc.value.lanes == [3]
        scheme._audit_stash = None

    def test_broken_ledger_tiling_raises(self, scanner_dfa, rng):
        scheme = _audited_scheme(scanner_dfa, rng)
        data = random_stream(rng, 200)
        result = scheme.run(data)
        result.stats.phase_cycles["ghost_phase"] = 12345.0  # bucket w/o total
        with pytest.raises(SelfCheckError) as exc:
            audit_scheme_run(scheme, data, None, result)
        assert exc.value.invariant == "ledger_tiling"

    def test_redundant_exceeding_transitions_raises(self, scanner_dfa, rng):
        scheme = _audited_scheme(scanner_dfa, rng)
        data = random_stream(rng, 200)
        result = scheme.run(data)
        result.stats.redundant_transitions = result.stats.transitions + 1
        with pytest.raises(SelfCheckError) as exc:
            audit_scheme_run(scheme, data, None, result)
        assert exc.value.invariant == "ledger_tiling"

    def test_ledger_checks_skipped_on_answer_only_backend(self, scanner_dfa, rng):
        training = random_stream(rng, 128)
        pal = GSpecPal(
            scanner_dfa,
            GSpecPalConfig(n_threads=4, selfcheck=True, backend="fast"),
            training_input=training,
        )
        scheme = pal.build_scheme("sre")
        data = random_stream(rng, 200)
        result = scheme.run(data)
        # A fast-backend ledger holds no execution cycles; cooking its
        # counters must NOT trip the audit (the check is gated).
        result.stats.redundant_transitions = result.stats.transitions + 1
        audit_scheme_run(scheme, data, None, result)

    def test_frontier_round_corruption_names_round(self, scanner_dfa, rng):
        from repro.speculation.records import VRStore

        scheme = _audited_scheme(scanner_dfa, rng, name="rr")
        data = random_stream(rng, 240)

        # Corrupt the recovery path: lookups for chunk 2 return a wrong end
        # state, so round 2's frontier check must fire with frontier=2.
        orig_lookup = VRStore.lookup

        def bad_lookup(self, chunk, start):
            hit = orig_lookup(self, chunk, start)
            if chunk == 2 and hit is not None:
                return (hit + 1) % scheme.sim.exec_dfa.n_states
            return hit

        with pytest.raises(SelfCheckError) as exc:
            try:
                VRStore.lookup = bad_lookup
                scheme.run(data)
            finally:
                VRStore.lookup = orig_lookup
        assert exc.value.invariant == "frontier_oracle"
        assert exc.value.frontier == 2
        assert exc.value.lanes == [2]

    def test_error_message_names_scheme_and_backend(self, scanner_dfa, rng):
        scheme = _audited_scheme(scanner_dfa, rng)
        data = random_stream(rng, 200)
        result = scheme.run(data)
        result.end_state = (result.end_state + 1) % scanner_dfa.n_states
        with pytest.raises(SelfCheckError, match=r"scheme=sre.*backend="):
            audit_scheme_run(scheme, data, None, result)
