"""Unit tests of the execution-backend layer.

Covers the name registry (explicit names, the ``REPRO_BACKEND`` environment
fallback, loud typo failure), the protocol conformance of both backends,
and — most importantly — bit-identical end states between ``FastBackend``
and the cycle-accurate lockstep executor across rectangular, ragged,
masked, gathered and degenerate batches.
"""

import numpy as np
import pytest

from repro.automata.dfa import STATE_DTYPE
from repro.engine import (
    BACKEND_ENV_VAR,
    CostSink,
    ExecutionBackend,
    FastBackend,
    SimBackend,
    create_backend,
    resolve_backend_name,
)
from repro.errors import SimulationError
from repro.gpu.device import RTX3090
from repro.gpu.executor import LockstepExecutor, distinct_chunks_per_warp
from repro.gpu.kernel import GpuSimulator
from repro.gpu.memory import MemoryModel
from repro.gpu.stats import KernelStats


# ----------------------------------------------------------------------
# registry / resolution
# ----------------------------------------------------------------------
def test_resolve_explicit_names():
    assert resolve_backend_name("sim") == "sim"
    assert resolve_backend_name("fast") == "fast"
    assert resolve_backend_name("  Fast ") == "fast"  # normalized


def test_resolve_defaults_to_sim(monkeypatch):
    monkeypatch.delenv(BACKEND_ENV_VAR, raising=False)
    assert resolve_backend_name(None) == "sim"


def test_resolve_reads_environment(monkeypatch):
    monkeypatch.setenv(BACKEND_ENV_VAR, "fast")
    assert resolve_backend_name(None) == "fast"
    # An explicit name always wins over the environment.
    assert resolve_backend_name("sim") == "sim"


def test_resolve_rejects_unknown_names(monkeypatch):
    with pytest.raises(SimulationError):
        resolve_backend_name("cuda")
    monkeypatch.setenv(BACKEND_ENV_VAR, "warp9")
    with pytest.raises(SimulationError):
        resolve_backend_name(None)


def test_create_backend_requires_its_ingredients():
    table = np.zeros((2, 2), dtype=np.int64)
    with pytest.raises(ValueError):
        create_backend("sim", table=table)  # no executor
    with pytest.raises(ValueError):
        create_backend("fast", executor=object())  # no table


def test_backends_satisfy_the_protocol():
    table = np.zeros((3, 2), dtype=np.int64)
    mm = MemoryModel.for_dfa(RTX3090, 3, 2)
    sim = SimBackend(LockstepExecutor(table, mm, RTX3090))
    fast = FastBackend(table)
    assert isinstance(sim, ExecutionBackend)
    assert isinstance(fast, ExecutionBackend)
    assert sim.accounts_cycles and not fast.accounts_cycles
    assert isinstance(KernelStats(device=RTX3090), CostSink)


def test_simulator_exposes_engine(monkeypatch):
    table = np.random.default_rng(0).integers(0, 4, size=(4, 3))
    from repro.automata.dfa import DFA

    dfa = DFA(table=table, start=0, accepting=frozenset({1}), name="t")
    monkeypatch.delenv(BACKEND_ENV_VAR, raising=False)
    sim = GpuSimulator(dfa=dfa, use_transformation=False)
    assert sim.backend_name == "sim"
    assert isinstance(sim.engine, SimBackend)
    monkeypatch.setenv(BACKEND_ENV_VAR, "fast")
    sim_fast = GpuSimulator(dfa=dfa, use_transformation=False)
    assert sim_fast.backend_name == "fast"
    assert isinstance(sim_fast.engine, FastBackend)
    # Explicit selection beats the environment.
    pinned = GpuSimulator(dfa=dfa, use_transformation=False, backend="sim")
    assert pinned.backend_name == "sim"


# ----------------------------------------------------------------------
# functional parity with the lockstep executor
# ----------------------------------------------------------------------
@pytest.fixture()
def rng():
    return np.random.default_rng(20260805)


def _make_pair(rng, n_states=13, n_symbols=7):
    table = rng.integers(0, n_states, size=(n_states, n_symbols))
    mm = MemoryModel.for_dfa(RTX3090, n_states, n_symbols)
    return LockstepExecutor(table, mm, RTX3090), FastBackend(table), table


def test_rectangular_batch_parity(rng):
    ex, fast, _ = _make_pair(rng)
    chunks = rng.integers(0, 7, size=(40, 23))
    starts = rng.integers(0, 13, size=40)
    np.testing.assert_array_equal(
        fast.run_batch(chunks, starts), ex.run(chunks, starts)
    )


def test_ragged_masked_batch_parity(rng):
    ex, fast, _ = _make_pair(rng)
    chunks = rng.integers(0, 7, size=(32, 17))
    starts = rng.integers(0, 13, size=32)
    lengths = rng.integers(0, 18, size=32)
    active = rng.random(32) < 0.6
    got = fast.run_batch(chunks, starts, lengths=lengths, active=active)
    want = ex.run(chunks, starts, lengths=lengths, active=active)
    np.testing.assert_array_equal(got, want)
    # Inactive lanes keep their start state.
    np.testing.assert_array_equal(got[~active], starts[~active].astype(got.dtype))


def test_gathered_batch_parity(rng):
    ex, fast, _ = _make_pair(rng)
    input_chunks = rng.integers(0, 7, size=(6, 11))
    chunk_ids = rng.integers(0, 6, size=20)
    starts = rng.integers(0, 13, size=20)
    lengths = rng.integers(0, 12, size=20)
    np.testing.assert_array_equal(
        fast.run_gathered(input_chunks, chunk_ids, starts, lengths=lengths),
        ex.run_gathered(input_chunks, chunk_ids, starts, lengths=lengths),
    )


def test_degenerate_batches(rng):
    ex, fast, _ = _make_pair(rng)
    starts = rng.integers(0, 13, size=5)
    empty = np.empty((5, 0), dtype=np.int64)
    np.testing.assert_array_equal(fast.run_batch(empty, starts), ex.run(empty, starts))
    chunks = rng.integers(0, 7, size=(5, 4))
    none_active = np.zeros(5, dtype=bool)
    np.testing.assert_array_equal(
        fast.run_batch(chunks, starts, active=none_active),
        ex.run(chunks, starts, active=none_active),
    )
    zero_lengths = np.zeros(5, dtype=np.int64)
    np.testing.assert_array_equal(
        fast.run_batch(chunks, starts, lengths=zero_lengths),
        ex.run(chunks, starts, lengths=zero_lengths),
    )


def test_fast_backend_validates_like_the_executor(rng):
    _, fast, _ = _make_pair(rng)
    with pytest.raises(SimulationError):
        fast.run_batch(np.zeros(4, dtype=np.int64), np.zeros(4, dtype=np.int64))
    with pytest.raises(SimulationError):
        fast.run_batch(np.zeros((4, 3), dtype=np.int64), np.zeros(5, dtype=np.int64))
    with pytest.raises(SimulationError):
        fast.run_batch(
            np.zeros((4, 3), dtype=np.int64),
            np.zeros(4, dtype=np.int64),
            lengths=np.asarray([0, 1, 2, 4]),  # > chunk_len
        )
    with pytest.raises(SimulationError):
        FastBackend(np.zeros(3, dtype=np.int64))  # 1-D table


def test_fast_backend_never_touches_the_ledger(rng):
    _, fast, _ = _make_pair(rng)
    chunks = rng.integers(0, 7, size=(8, 9))
    starts = rng.integers(0, 13, size=8)
    stats = KernelStats(device=RTX3090, n_threads=8)
    fast.run_batch(chunks, starts, stats=stats, phase="speculative_execution")
    assert stats.cycles == 0.0
    assert stats.phase_cycles == {}
    assert stats.transitions == 0
    assert stats.shared_accesses == 0 and stats.global_accesses == 0


def test_sim_backend_charges_the_ledger(rng):
    ex, _, table = _make_pair(rng)
    sim = SimBackend(ex)
    chunks = rng.integers(0, 7, size=(8, 9))
    starts = rng.integers(0, 13, size=8)
    stats = KernelStats(device=RTX3090, n_threads=8)
    ends = sim.run_batch(chunks, starts, stats=stats, phase="p")
    assert stats.cycles > 0.0
    assert stats.transitions == 8 * 9
    np.testing.assert_array_equal(ends, ex.run(chunks, starts))


def test_fast_backend_returns_state_dtype(rng):
    _, fast, _ = _make_pair(rng)
    chunks = rng.integers(0, 7, size=(4, 5))
    starts = rng.integers(0, 13, size=4)
    assert fast.run_batch(chunks, starts).dtype == STATE_DTYPE
    assert (
        fast.run_batch(chunks, starts, lengths=np.asarray([5, 4, 0, 2])).dtype
        == STATE_DTYPE
    )


# ----------------------------------------------------------------------
# the vectorized fetch-coalescing helper
# ----------------------------------------------------------------------
def _naive_distinct(lane_chunk, n_warps, ws):
    out = np.zeros(n_warps, dtype=np.int64)
    for w in range(n_warps):
        lanes = lane_chunk[w * ws : (w + 1) * ws]
        out[w] = np.unique(lanes[lanes >= 0]).size
    return out


@pytest.mark.parametrize("seed", [0, 1, 2])
def test_distinct_chunks_per_warp_matches_naive(seed):
    rng = np.random.default_rng(seed)
    ws = 32
    n_warps = 17
    lane_chunk = rng.integers(-1, 50, size=n_warps * ws)
    np.testing.assert_array_equal(
        distinct_chunks_per_warp(lane_chunk, n_warps, ws),
        _naive_distinct(lane_chunk, n_warps, ws),
    )


def test_distinct_chunks_per_warp_all_invalid():
    lane_chunk = np.full(64, -1, dtype=np.int64)
    np.testing.assert_array_equal(
        distinct_chunks_per_warp(lane_chunk, 2, 32), np.zeros(2, dtype=np.int64)
    )
