"""The fused-vs-sequential differential wall (ISSUE 6 tentpole contract).

A fused cross-stream dispatch must be *answer-identical* to feeding every
stream sequentially through its own :class:`StreamSession` — for every
scheme, on both backends, under any segmentation, including the degenerate
shapes a gang scheduler is most likely to get wrong: a 1-stream batch,
empty segments, all-empty batches, and wildly ragged lengths.  The
sequential side runs the full speculation machinery (whose answers are in
turn pinned to ``dfa.run`` by the scheme-level differential suites), so
agreement here chains the fused path all the way to the paper's oracle.
"""

import numpy as np
import pytest

from repro.engine.fused import FusedBatchEngine
from repro.errors import SimulationError
from repro.framework import GSpecPal, GSpecPalConfig
from repro.workloads import classic

BACKENDS = ("sim", "fast")
SCHEMES = ("pm", "sre", "rr", "nf", "sfa", "seq", "spec-seq")


@pytest.fixture(scope="module")
def training():
    rng = np.random.default_rng(2026)
    return bytes(rng.integers(97, 123, size=1024).astype(np.uint8))


@pytest.fixture(scope="module", params=["scanner", "divisibility"])
def dfa(request):
    if request.param == "scanner":
        return classic.keyword_scanner(b"fuse")
    return classic.divisibility(7)


def _pal(dfa, training, backend, **kw):
    config = GSpecPalConfig(n_threads=8, backend=backend, **kw)
    return GSpecPal(dfa, config, training_input=training)


def _random_rounds(rng, n_streams, n_rounds, min_len=8, max_len=120):
    """Per-round ragged segments.

    ``min_len`` defaults to the schemes' own floor — a segment must be at
    least ``n_threads`` symbols for the per-stream partitioner, so the
    sequential reference can run it; the fused path's sub-``min_len`` and
    empty-segment behaviour is pinned by the oracle tests below instead.
    """
    return [
        [
            bytes(
                rng.integers(97, 123, size=int(rng.integers(min_len, max_len)))
                .astype(np.uint8)
            )
            for _ in range(n_streams)
        ]
        for _ in range(n_rounds)
    ]


# ----------------------------------------------------------------------
# fused ≡ sequential, across all schemes × both backends × segmentations
# ----------------------------------------------------------------------
@pytest.mark.parametrize("backend", BACKENDS)
@pytest.mark.parametrize("scheme", SCHEMES)
def test_fused_matches_sequential_sessions(dfa, training, scheme, backend):
    rng = np.random.default_rng(hash((scheme, backend)) % (2**32))
    pal = _pal(dfa, training, backend)
    fused = FusedBatchEngine(pal._simulator())
    n_streams, n_rounds = 6, 4

    sessions = [pal.stream(scheme=scheme) for _ in range(n_streams)]
    fused_states = [dfa.start] * n_streams
    for segments in _random_rounds(rng, n_streams, n_rounds):
        for session, segment in zip(sessions, segments):
            session.feed(segment)
        fused_states = list(
            map(int, fused.run_streams(segments, fused_states))
        )
        assert fused_states == [s.state for s in sessions]
    # The chained end state also equals the one-shot oracle per stream.
    for i, session in enumerate(sessions):
        assert fused_states[i] == session.state


@pytest.mark.parametrize("backend", BACKENDS)
def test_fused_single_stream_batch(dfa, training, backend):
    """A 1-wide gang is still a gang: no special-casing drift."""
    rng = np.random.default_rng(5)
    pal = _pal(dfa, training, backend)
    fused = FusedBatchEngine(pal._simulator())
    state = dfa.start
    fed = b""
    for _ in range(5):
        segment = bytes(
            rng.integers(97, 123, size=int(rng.integers(0, 90))).astype(np.uint8)
        )
        state = int(fused.run_streams([segment], [state])[0])
        fed += segment
        assert state == dfa.run(fed)


@pytest.mark.parametrize("backend", BACKENDS)
def test_fused_empty_segments_pass_state_through(dfa, training, backend):
    pal = _pal(dfa, training, backend)
    fused = FusedBatchEngine(pal._simulator())
    starts = [dfa.start, dfa.run(b"fu"), dfa.run(b"fusefuse")]
    ends = fused.run_streams([b"", b"", b""], starts)
    assert list(map(int, ends)) == starts


@pytest.mark.parametrize("backend", BACKENDS)
def test_fused_mixed_empty_and_ragged(dfa, training, backend):
    """Empty segments ride in the same batch as long ones unchanged."""
    rng = np.random.default_rng(17)
    pal = _pal(dfa, training, backend)
    fused = FusedBatchEngine(pal._simulator())
    segments = [b"", b"fuse" * 40, b"f", b"", bytes(rng.integers(97, 123, size=333).astype(np.uint8))]
    starts = [int(rng.integers(0, dfa.n_states)) for _ in segments]
    ends = fused.run_streams(segments, starts)
    for segment, start, end in zip(segments, starts, ends):
        assert int(end) == dfa.run(segment, start=start)


def test_fused_empty_batch(dfa, training):
    pal = _pal(dfa, training, "fast")
    fused = FusedBatchEngine(pal._simulator())
    assert fused.run_streams([], []).size == 0


@pytest.mark.parametrize("backend", BACKENDS)
def test_fused_dispatch_record_accounts_symbols(dfa, training, backend):
    pal = _pal(dfa, training, backend)
    fused = FusedBatchEngine(pal._simulator())
    segments = [b"abc", b"", b"fusefuse"]
    record = fused.dispatch(segments, [dfa.start] * 3)
    assert record.n_streams == 3
    assert record.total_symbols == sum(len(s) for s in segments)
    assert record.end_states.shape == (3,)


# ----------------------------------------------------------------------
# the transformation boundary: fused answers are user-space
# ----------------------------------------------------------------------
@pytest.mark.parametrize("use_transformation", [True, False])
def test_fused_respects_frequency_transformation(dfa, training, use_transformation):
    """The fused gather runs on the (possibly remapped) exec table but its
    answers come back in the original numbering, like every scheme."""
    rng = np.random.default_rng(23)
    pal = _pal(dfa, training, "fast", use_transformation=use_transformation)
    fused = FusedBatchEngine(pal._simulator())
    segments = [
        bytes(rng.integers(97, 123, size=int(n)).astype(np.uint8))
        for n in rng.integers(0, 200, size=9)
    ]
    starts = [int(rng.integers(0, dfa.n_states)) for _ in segments]
    ends = fused.run_streams(segments, starts)
    for segment, start, end in zip(segments, starts, ends):
        assert int(end) == dfa.run(segment, start=start)


# ----------------------------------------------------------------------
# the FastBackend fused entry point's own contract
# ----------------------------------------------------------------------
def test_run_streams_matches_run_batch(dfa):
    from repro.engine import FastBackend

    rng = np.random.default_rng(31)
    backend = FastBackend(dfa.table)
    n, max_len = 12, 64
    chunks = rng.integers(0, dfa.n_symbols, size=(n, max_len)).astype(np.int64)
    lengths = np.sort(rng.integers(0, max_len + 1, size=n))[::-1].copy()
    starts = rng.integers(0, dfa.n_states, size=n).astype(np.int64)
    fused_ends = backend.run_streams(chunks, starts, lengths)
    batch_ends = backend.run_batch(chunks, starts, lengths=lengths)
    np.testing.assert_array_equal(fused_ends, batch_ends)


def test_run_streams_rejects_unsorted_lengths(dfa):
    from repro.engine import FastBackend

    backend = FastBackend(dfa.table)
    chunks = np.zeros((3, 4), dtype=np.int64)
    starts = np.zeros(3, dtype=np.int64)
    with pytest.raises(SimulationError, match="descending"):
        backend.run_streams(chunks, starts, np.array([1, 4, 2]))


def test_run_streams_validates_symbols(dfa):
    from repro.engine import FastBackend

    backend = FastBackend(dfa.table)
    chunks = np.full((2, 3), dfa.n_symbols + 5, dtype=np.int64)  # out of range
    starts = np.zeros(2, dtype=np.int64)
    with pytest.raises(SimulationError, match="symbols out of range"):
        backend.run_streams(chunks, starts, np.array([3, 3]))
    # ... but padding beyond a lane's length may hold garbage freely.
    chunks[:, 1:] = 0
    chunks[0, 0] = 0
    ends = backend.run_streams(
        np.array([[0, 99, 99], [0, 99, 99]]), starts, np.array([1, 1])
    )
    assert ends.shape == (2,)


# ----------------------------------------------------------------------
# selfcheck: the fused path keeps the audits, per stream
# ----------------------------------------------------------------------
@pytest.mark.parametrize("backend", BACKENDS)
def test_fused_selfcheck_passes_on_honest_dispatch(dfa, training, backend):
    rng = np.random.default_rng(41)
    pal = _pal(dfa, training, backend)
    fused = FusedBatchEngine(pal._simulator(), selfcheck=True, block=32)
    segments = [
        bytes(rng.integers(97, 123, size=int(n)).astype(np.uint8))
        for n in rng.integers(0, 150, size=7)
    ]
    record = fused.dispatch(segments, [dfa.start] * 7)
    assert record.frontiers is not None
    assert len(record.frontiers) == 7
    # Streams long enough to cross a block boundary have snapshots, and
    # every snapshot position is within the stream's own segment.
    for segment, snaps in zip(segments, record.frontiers):
        for pos, _state in snaps:
            assert 0 < pos <= len(segment)


def test_fused_selfcheck_catches_corrupt_end_state(dfa, training):
    from repro.errors import SelfCheckError
    from repro.selfcheck.audit import audit_fused_dispatch

    pal = _pal(dfa, training, "fast")
    fused = FusedBatchEngine(pal._simulator(), selfcheck=True)
    segments = [b"fusefuse", b"abc"]
    record = fused.dispatch(segments, [dfa.start] * 2)
    # Corrupt one lane's answer: the per-stream oracle audit must name it.
    record.end_states = record.end_states.copy()
    record.end_states[1] = (record.end_states[1] + 1) % dfa.n_states
    with pytest.raises(SelfCheckError) as excinfo:
        audit_fused_dispatch(fused, segments, [dfa.start] * 2, record)
    assert excinfo.value.invariant == "fused_end_state_oracle"
    assert excinfo.value.lanes == [1]


def test_fused_selfcheck_catches_corrupt_frontier(dfa, training):
    from repro.errors import SelfCheckError
    from repro.selfcheck.audit import audit_fused_dispatch

    pal = _pal(dfa, training, "fast")
    fused = FusedBatchEngine(pal._simulator(), selfcheck=True, block=16)
    segments = [b"fuse" * 20]
    record = fused.dispatch(segments, [dfa.start])
    assert record.frontiers[0], "segment long enough to snapshot"
    pos, state = record.frontiers[0][0]
    record.frontiers[0][0] = (pos, (state + 1) % dfa.n_states)
    with pytest.raises(SelfCheckError) as excinfo:
        audit_fused_dispatch(fused, segments, [dfa.start], record)
    assert excinfo.value.invariant == "fused_frontier_chain"
