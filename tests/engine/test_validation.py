"""Input-domain validation: both backends agree on the error contract.

Out-of-range start states or symbols must surface as a
:class:`SimulationError` naming the offending lanes — never a raw numpy
``IndexError``, and never a silently wrong answer via negative flat-gather
indexing (the fast backend's failure mode before validation).
"""

import numpy as np
import pytest

from repro.engine.base import validate_batch_inputs
from repro.engine.fast import FastBackend
from repro.errors import SimulationError
from repro.gpu.kernel import GpuSimulator
from repro.workloads import classic


@pytest.fixture(scope="module")
def dfa():
    return classic.divisibility(5, base=2)


def _engines(dfa):
    return [
        GpuSimulator(dfa=dfa, use_transformation=False, backend=name).engine
        for name in ("sim", "fast")
    ]


@pytest.mark.parametrize("backend", ["sim", "fast"])
class TestErrorContract:
    def _engine(self, dfa, backend):
        return GpuSimulator(dfa=dfa, use_transformation=False, backend=backend).engine

    def test_start_too_large_raises(self, dfa, backend):
        engine = self._engine(dfa, backend)
        chunks = np.zeros((3, 4), dtype=np.int64) + ord("0")
        starts = np.asarray([0, dfa.n_states + 2, 1])
        with pytest.raises(SimulationError) as exc:
            engine.run_batch(chunks, starts)
        assert "start" in str(exc.value) and "1" in str(exc.value)

    def test_negative_start_raises(self, dfa, backend):
        engine = self._engine(dfa, backend)
        chunks = np.zeros((2, 4), dtype=np.int64) + ord("0")
        with pytest.raises(SimulationError, match="start"):
            engine.run_batch(chunks, np.asarray([-1, 0]))

    def test_symbol_out_of_range_raises(self, dfa, backend):
        engine = self._engine(dfa, backend)
        chunks = np.full((2, 4), dfa.n_symbols + 9, dtype=np.int64)
        with pytest.raises(SimulationError, match="symbol"):
            engine.run_batch(chunks, np.zeros(2, dtype=np.int64))

    def test_error_names_offending_lanes(self, dfa, backend):
        engine = self._engine(dfa, backend)
        chunks = np.zeros((4, 4), dtype=np.int64) + ord("0")
        starts = np.asarray([0, 99, 0, 99])
        with pytest.raises(SimulationError) as exc:
            engine.run_batch(chunks, starts)
        message = str(exc.value)
        assert "1" in message and "3" in message

    def test_padding_symbols_beyond_lengths_are_ignored(self, dfa, backend):
        """Ragged batches pad with arbitrary values; only executed
        positions are validated."""
        engine = self._engine(dfa, backend)
        chunks = np.zeros((2, 6), dtype=np.int64) + ord("0")
        chunks[0, 3:] = 999  # garbage in the padded tail
        lengths = np.asarray([3, 6])
        ends = engine.run_batch(chunks, np.zeros(2, dtype=np.int64), lengths=lengths)
        assert ends.shape == (2,)

    def test_inactive_lane_symbols_are_ignored(self, dfa, backend):
        engine = self._engine(dfa, backend)
        chunks = np.zeros((2, 4), dtype=np.int64) + ord("0")
        chunks[1, :] = 999
        active = np.asarray([True, False])
        ends = engine.run_batch(chunks, np.zeros(2, dtype=np.int64), active=active)
        assert ends.shape == (2,)

    def test_empty_chunk_with_bad_start_still_raises(self, dfa, backend):
        """Starts are validated even when no symbol executes — schemes
        always hand inactive lanes a valid placeholder."""
        engine = self._engine(dfa, backend)
        chunks = np.zeros((2, 0), dtype=np.int64)
        with pytest.raises(SimulationError, match="start"):
            engine.run_batch(chunks, np.asarray([0, 77]))


class TestBackendsAgree:
    def test_same_exception_type_and_lanes(self, dfa):
        chunks = np.zeros((3, 5), dtype=np.int64) + ord("1")
        starts = np.asarray([0, -3, 2])
        messages = []
        for engine in _engines(dfa):
            with pytest.raises(SimulationError) as exc:
                engine.run_batch(chunks, starts)
            messages.append(str(exc.value))
        # Both name lane 1; only the backend label differs.
        assert all("lanes 1" in m for m in messages)

    def test_no_wrong_answer_from_negative_wraparound(self, dfa):
        """The pre-fix fast-backend hazard: a negative start silently
        gathers from the end of the flat table and returns garbage."""
        fb = FastBackend(dfa.table)
        with pytest.raises(SimulationError):
            fb.run_batch(
                np.zeros((1, 3), dtype=np.int64) + ord("0"),
                np.asarray([-1]),
            )


class TestValidateHelper:
    def test_clean_inputs_pass(self):
        validate_batch_inputs(
            np.zeros((2, 3), dtype=np.int64),
            np.zeros(2, dtype=np.int64),
            n_states=4,
            n_symbols=2,
        )

    def test_lane_list_capped(self):
        starts = np.full(64, 99, dtype=np.int64)
        with pytest.raises(SimulationError) as exc:
            validate_batch_inputs(
                np.zeros((64, 1), dtype=np.int64),
                starts,
                n_states=4,
                n_symbols=2,
            )
        assert "64 lanes total" in str(exc.value)
