"""Feature-profiling tests."""

import numpy as np
import pytest

from repro.selector.features import profile_features, speculation_accuracy
from repro.workloads import classic
from repro.workloads.components import counter_component
from repro.automata.dfa import DFA
from repro.errors import SchemeError


@pytest.fixture(scope="module")
def counter_dfa():
    comp = counter_component(9, n_symbols=64, seed=3)
    return DFA(table=comp.table, start=0, accepting=frozenset({0}))


def make_stream(rng, n, hi=64):
    return bytes(rng.integers(0, hi, size=n).astype(np.uint8))


def test_features_fields(counter_dfa, rng):
    f = profile_features(counter_dfa, make_stream(rng, 4000), n_chunks=32)
    assert f.n_states == 9
    assert 0.0 <= f.spec1_accuracy <= 1.0
    assert f.spec1_accuracy <= f.spec4_accuracy <= f.spec16_accuracy
    assert f.convergence_states >= 1.0
    assert f.profiling_seconds > 0


def test_counter_is_hard_to_predict(counter_dfa, rng):
    f = profile_features(counter_dfa, make_stream(rng, 4000), n_chunks=32)
    assert f.spec1_accuracy < 0.5
    assert f.convergence_states == pytest.approx(9.0)  # never converges


def test_scanner_is_easy(rng):
    d = classic.keyword_scanner(b"needle")
    data = bytes(rng.integers(97, 123, size=4000).astype(np.uint8))
    f = profile_features(d, data, n_chunks=32)
    assert f.spec1_accuracy > 0.9
    assert f.convergence_states < 4


def test_speculation_accuracy_topk_monotone(counter_dfa, rng):
    data = make_stream(rng, 3000)
    a1 = speculation_accuracy(counter_dfa, data, k=1)
    a9 = speculation_accuracy(counter_dfa, data, k=9)
    assert a9 >= a1
    assert a9 == 1.0  # truth always inside the counter's full queue


def test_too_short_training_raises(counter_dfa):
    with pytest.raises(SchemeError):
        profile_features(counter_dfa, b"ab", n_chunks=64)


def test_as_dict_roundtrip(counter_dfa, rng):
    f = profile_features(counter_dfa, make_stream(rng, 2000), n_chunks=16)
    d = f.as_dict()
    assert d["n_states"] == 9
    assert set(d) >= {"spec1_accuracy", "sensitivity", "convergence_states"}


def test_input_sensitive_flag(counter_dfa, rng):
    f = profile_features(counter_dfa, make_stream(rng, 2000), n_chunks=16)
    assert f.input_sensitive == (f.sensitivity > 0.15)
