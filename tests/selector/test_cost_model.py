"""Cost-model (Eq. 1–4) tests."""

import pytest

from repro.selector.cost_model import CostModel, CostModelInputs
from tests.selector.test_decision_tree import features


@pytest.fixture()
def model():
    return CostModel()


@pytest.fixture()
def inputs():
    return CostModelInputs(input_length=65536, n_threads=256, k=4)


def test_tp1_scales_with_chunk_length(model):
    short = CostModelInputs(input_length=1000, n_threads=10)
    long = CostModelInputs(input_length=10000, n_threads=10)
    assert model.t_p1(long) == pytest.approx(10 * model.t_p1(short))


def test_tp1_hot_cheaper_than_cold(model):
    hot = CostModelInputs(input_length=1000, n_threads=10, hot_fraction=1.0)
    cold = CostModelInputs(input_length=1000, n_threads=10, hot_fraction=0.0)
    assert model.t_p1(hot) < model.t_p1(cold)


def test_pm_estimate_grows_with_mispredictions(model, inputs):
    good = features(spec4_accuracy=0.99)
    bad = features(spec4_accuracy=0.01)
    assert model.estimate_pm(bad, inputs) > model.estimate_pm(good, inputs)


def test_sr_estimate_benefits_from_deltas(model, inputs):
    f = features(spec1_accuracy=0.1)
    none = model.estimate_sr(f, inputs, delta_end=0.0, delta_specs=0.0)
    lots = model.estimate_sr(f, inputs, delta_end=0.5, delta_specs=0.4)
    assert lots < none


def test_delta_end_large_when_converging(model):
    fast = features(convergence_states=1.0, spec1_accuracy=0.1)
    slow = features(convergence_states=30.0, spec1_accuracy=0.1)
    assert model.delta_end(fast) > model.delta_end(slow)


def test_delta_specs_is_queue_depth_gain(model):
    f = features(spec1_accuracy=0.1, spec16_accuracy=0.9)
    assert model.delta_specs(f) == pytest.approx(0.8)


def test_estimate_all_keys(model, inputs):
    est = model.estimate_all(features(), inputs)
    assert set(est) == {"pm", "sre", "rr", "nf", "sfa"}
    assert all(v > 0 for v in est.values())


def test_best_scheme_pm_regime(model, inputs):
    f = features(spec4_accuracy=0.999, spec1_accuracy=0.2, convergence_states=30.0,
                 spec16_accuracy=0.999)
    # With spec-4 nearly perfect, PM's recovery term vanishes; it should win
    # or be close — at minimum beat SRE which keeps a big P_recover.
    est = model.estimate_all(f, inputs)
    assert est["pm"] < est["sre"]


def test_best_scheme_sre_regime(model, inputs):
    f = features(convergence_states=1.0, spec1_accuracy=0.3, spec4_accuracy=0.4)
    est = model.estimate_all(f, inputs)
    # Among the speculative schemes, delta_end saturates recovery for the
    # SR family.  (SFA may still rank cheapest overall: 256 threads x 100
    # mapping lanes fits device residency, so its construction costs one
    # chunk-time with zero verify/recovery terms.)
    best_speculative = min(("pm", "sre", "rr", "nf"), key=est.get)
    assert best_speculative in ("sre", "rr", "nf")


def test_p_recover_clamped_non_negative(model, inputs):
    f = features(spec1_accuracy=0.9)
    t = model.estimate_sr(f, inputs, delta_end=0.5, delta_specs=0.5)
    assert t > 0

# ----------------------------------------------------------------------
# regression tests for the PR-3 bugfix batch
# ----------------------------------------------------------------------
def test_t_comm_grows_with_speculation_degree(model):
    """Regression: t_comm used to collapse to max(1,k)/max(1,k) == 1 cycle
    for every k. Shuffling k speculative states costs strictly more than
    shuffling one."""
    assert model.t_comm(4) > model.t_comm(1)
    assert model.t_comm(16) > model.t_comm(4)


def test_t_comm_floor_and_increment(model):
    base = model.t_comm(1)
    assert base == pytest.approx(float(model.device.comm_cycles))
    step = model.t_comm(2) - model.t_comm(1)
    assert step == pytest.approx(float(model.device.shuffle_cycles))
    # Degenerate degrees clamp to the single-state startup cost.
    assert model.t_comm(0) == model.t_comm(-3) == base


def test_delta_specs_scales_with_others_capacity(model):
    """Regression: delta_specs ignored others_capacity entirely. A deeper
    queue interpolates toward the spec-16 accuracy."""
    f = features(spec1_accuracy=0.1, spec4_accuracy=0.5, spec16_accuracy=0.9)
    d1 = model.delta_specs(f, others_capacity=1)
    d4 = model.delta_specs(f, others_capacity=4)
    d16 = model.delta_specs(f, others_capacity=16)
    assert d1 < d4 < d16
    assert d1 == pytest.approx(0.0)  # one record == spec-1, no gain
    assert d4 == pytest.approx(0.4)  # spec4 - spec1
    assert d16 == pytest.approx(0.8)  # spec16 - spec1
    # Beyond the deepest measured anchor the gain saturates.
    assert model.delta_specs(f, others_capacity=64) == pytest.approx(d16)
    assert model.delta_specs(f, others_capacity=0) == 0.0


def test_estimate_all_sensitive_to_capacity(model):
    """The SRE-family estimates must reflect the configured VR depth."""
    f = features(spec1_accuracy=0.2, spec4_accuracy=0.5, spec16_accuracy=0.9,
                 convergence_states=30.0)
    shallow = CostModelInputs(input_length=65536, n_threads=256, k=4,
                              others_capacity=1)
    deep = CostModelInputs(input_length=65536, n_threads=256, k=4,
                           others_capacity=16)
    est_shallow = model.estimate_all(f, shallow)
    est_deep = model.estimate_all(f, deep)
    for name in ("rr", "nf"):
        assert est_deep[name] < est_shallow[name], name
    # PM runs fixed-degree speculation; capacity must not perturb it.
    assert est_deep["pm"] == pytest.approx(est_shallow["pm"])


def test_spec_accuracy_interpolates_anchor_curve(model):
    """Regression: estimate_pm used spec4_accuracy for *every* k >= 4, so a
    k=16 PM config was costed with the (much worse) spec-4 anchor. The
    accuracy curve now interpolates the measured spec-1/4/16 anchors."""
    f = features(spec1_accuracy=0.1, spec4_accuracy=0.5, spec16_accuracy=0.9)
    # Anchors reproduce exactly.
    assert model.spec_accuracy_at(f, 1) == pytest.approx(f.spec1_accuracy)
    assert model.spec_accuracy_at(f, 4) == pytest.approx(f.spec4_accuracy)
    assert model.spec_accuracy_at(f, 16) == pytest.approx(f.spec16_accuracy)
    # Between anchors the curve is strictly between the endpoints.
    assert f.spec1_accuracy < model.spec_accuracy_at(f, 2) < f.spec4_accuracy
    assert f.spec4_accuracy < model.spec_accuracy_at(f, 8) < f.spec16_accuracy
    # Beyond the deepest anchor the curve saturates (no extrapolation).
    assert model.spec_accuracy_at(f, 32) == pytest.approx(f.spec16_accuracy)


def test_pm_mismatch_monotone_over_k_sweep(model):
    """Cost-monotonicity regression for the k sweep: with accuracy anchors
    increasing in k, the implied mismatch probability must be
    non-increasing — and strictly decreasing across anchor intervals."""
    f = features(spec1_accuracy=0.1, spec4_accuracy=0.5, spec16_accuracy=0.9)
    mismatch = [1.0 - model.spec_accuracy_at(f, k) for k in (1, 2, 4, 8, 16, 32)]
    for lo, hi in zip(mismatch[1:], mismatch[:-1]):
        assert lo <= hi + 1e-12
    assert mismatch[4] < mismatch[2] < mismatch[0]


def test_pm_k16_costed_with_spec16_anchor(model):
    """A k=16 PM estimate must be driven by the spec-16 anchor, not stuck
    at spec-4 the way the old ``k >= 4 -> spec4_accuracy`` branch was."""
    improving = features(spec1_accuracy=0.1, spec4_accuracy=0.3,
                         spec16_accuracy=0.95)
    flat = features(spec1_accuracy=0.1, spec4_accuracy=0.3,
                    spec16_accuracy=0.3)
    inp4 = CostModelInputs(input_length=65536, n_threads=256, k=4)
    inp16 = CostModelInputs(input_length=65536, n_threads=256, k=16)
    # At k=4 the deeper anchor is out of scope: both cost identically.
    assert model.estimate_pm(improving, inp4) == pytest.approx(
        model.estimate_pm(flat, inp4)
    )
    # At k=16 the old formula also costed these identically; the fixed
    # model rewards the accurate deep anchor.
    assert model.estimate_pm(improving, inp16) < model.estimate_pm(flat, inp16)


def test_sfa_estimate_scales_with_reachable_width(model, inputs):
    narrow = features(reachable_width=2.0)
    wide = features(reachable_width=80.0)
    assert model.estimate_sfa(narrow, inputs) < model.estimate_sfa(wide, inputs)


def test_sfa_estimate_falls_back_to_n_states(model, inputs):
    # Plans profiled before the feature existed carry the 0.0 default; the
    # model must assume the conservative full-width lane count.
    legacy = features(reachable_width=0.0)
    full = features(reachable_width=100.0)  # == n_states
    assert model.estimate_sfa(legacy, inputs) == pytest.approx(
        model.estimate_sfa(full, inputs)
    )


def test_gspecpal_threads_capacity_into_estimates(rng):
    """GSpecPal.estimate_costs feeds the configured others_registers into
    the cost model instead of a hard-coded default."""
    import numpy as np

    from repro.framework import GSpecPal, GSpecPalConfig
    from repro.workloads import classic

    dfa = classic.keyword_scanner(b"abc")
    training = bytes(rng.integers(97, 123, size=512).astype(np.uint8))
    shallow = GSpecPal(
        dfa,
        GSpecPalConfig(n_threads=32, others_registers=1),
        training_input=training,
    ).estimate_costs(input_length=65536)
    deep = GSpecPal(
        dfa,
        GSpecPalConfig(n_threads=32, others_registers=16),
        training_input=training,
    ).estimate_costs(input_length=65536)
    assert set(shallow) == {"pm", "sre", "rr", "nf", "sfa"}
    assert deep["rr"] <= shallow["rr"]
