"""Decision-tree selector tests (Fig. 6)."""

import pytest

from repro.selector.decision_tree import DecisionTreeSelector, SelectorThresholds
from repro.selector.features import FSMFeatures


def features(**overrides) -> FSMFeatures:
    base = dict(
        name="t",
        n_states=100,
        spec1_accuracy=0.1,
        spec4_accuracy=0.2,
        spec16_accuracy=0.8,
        sensitivity=0.05,
        convergence_states=20.0,
        profiling_seconds=0.1,
    )
    base.update(overrides)
    return FSMFeatures(**base)


@pytest.fixture()
def sel():
    return DecisionTreeSelector()


def test_speck_accurate_spec1_not_selects_pm(sel):
    f = features(spec4_accuracy=0.95, spec1_accuracy=0.3)
    assert sel.select(f) == "pm"


def test_spec1_also_accurate_skips_pm(sel):
    # When spec-1 already hits, spec-k redundancy buys nothing.
    f = features(spec4_accuracy=0.97, spec1_accuracy=0.9, convergence_states=2.0)
    assert sel.select(f) == "sre"


def test_fast_convergence_selects_sre(sel):
    f = features(convergence_states=2.0)
    assert sel.select(f) == "sre"


def test_input_sensitive_selects_nf(sel):
    f = features(sensitivity=0.4)
    assert sel.select(f) == "nf"


def test_default_selects_rr(sel):
    assert sel.select(features()) == "rr"


def test_priority_pm_over_sre(sel):
    # PM check fires before convergence check.
    f = features(spec4_accuracy=0.95, spec1_accuracy=0.2, convergence_states=1.5)
    assert sel.select(f) == "pm"


def test_custom_thresholds():
    sel = DecisionTreeSelector(SelectorThresholds(fast_convergence=50.0))
    assert sel.select(features(convergence_states=20.0)) == "sre"


def test_explain_mentions_decision(sel):
    for f, scheme in [
        (features(spec4_accuracy=0.95), "PM"),
        (features(convergence_states=1.0), "SRE"),
        (features(sensitivity=0.5), "NF"),
        (features(), "RR"),
    ]:
        text = sel.explain(f)
        assert scheme in text


def test_schemes_constant():
    assert set(DecisionTreeSelector.SCHEMES) == {"pm", "sre", "rr", "nf"}
