"""Decision-tree selector tests (Fig. 6)."""

import pytest

from repro.selector.decision_tree import DecisionTreeSelector, SelectorThresholds
from repro.selector.features import FSMFeatures


def features(**overrides) -> FSMFeatures:
    base = dict(
        name="t",
        n_states=100,
        spec1_accuracy=0.1,
        spec4_accuracy=0.2,
        spec16_accuracy=0.8,
        sensitivity=0.05,
        convergence_states=20.0,
        profiling_seconds=0.1,
    )
    base.update(overrides)
    return FSMFeatures(**base)


@pytest.fixture()
def sel():
    return DecisionTreeSelector()


def test_speck_accurate_spec1_not_selects_pm(sel):
    f = features(spec4_accuracy=0.95, spec1_accuracy=0.3)
    assert sel.select(f) == "pm"


def test_spec1_also_accurate_skips_pm(sel):
    # When spec-1 already hits, spec-k redundancy buys nothing.
    f = features(spec4_accuracy=0.97, spec1_accuracy=0.9, convergence_states=2.0)
    assert sel.select(f) == "sre"


def test_fast_convergence_selects_sre(sel):
    f = features(convergence_states=2.0)
    assert sel.select(f) == "sre"


def test_input_sensitive_selects_nf(sel):
    f = features(sensitivity=0.4)
    assert sel.select(f) == "nf"


def test_default_selects_rr(sel):
    assert sel.select(features()) == "rr"


def test_priority_pm_over_sre(sel):
    # PM check fires before convergence check.
    f = features(spec4_accuracy=0.95, spec1_accuracy=0.2, convergence_states=1.5)
    assert sel.select(f) == "pm"


def test_custom_thresholds():
    sel = DecisionTreeSelector(SelectorThresholds(fast_convergence=50.0))
    assert sel.select(features(convergence_states=20.0)) == "sre"


def test_explain_mentions_decision(sel):
    for f, scheme in [
        (features(spec4_accuracy=0.95), "PM"),
        (features(convergence_states=1.0), "SRE"),
        (features(sensitivity=0.5), "NF"),
        (features(), "RR"),
    ]:
        text = sel.explain(f)
        assert scheme in text


def test_schemes_constant():
    assert set(DecisionTreeSelector.SCHEMES) == {"pm", "sre", "rr", "nf", "sfa"}


def test_speculation_floor_selects_sfa(sel):
    # Even deep queues can't predict a permutation automaton: the orange
    # node fires before every speculative branch.
    f = features(spec1_accuracy=0.0, spec4_accuracy=0.03, spec16_accuracy=0.1)
    scheme, path = sel.decide(f)
    assert scheme == "sfa"
    assert path == ["speculation_floor"]


def test_speculation_floor_beats_other_branches(sel):
    # The floor check has priority: hopeless spec-16 routes to SFA even
    # when convergence/sensitivity would otherwise pick SRE or NF.
    f = features(spec16_accuracy=0.05, convergence_states=1.0, sensitivity=0.9)
    assert sel.select(f) == "sfa"


def test_speculation_floor_threshold_is_tunable():
    strict = DecisionTreeSelector(SelectorThresholds(speculation_floor=0.9))
    assert strict.select(features(spec16_accuracy=0.8)) == "sfa"
    lenient = DecisionTreeSelector(SelectorThresholds(speculation_floor=0.0))
    assert lenient.select(features(spec16_accuracy=0.05)) != "sfa"


def test_width_ceiling_corroborates_noisy_floor(sel):
    # True spec-16 accuracy on a 128-state permutation is 16/128 = 0.125,
    # but a few dozen sampled boundaries can measure 0.15..0.3: the
    # noise-free width ceiling must still route the FSM to SFA.
    f = features(spec16_accuracy=0.18, reachable_width=128.0, n_states=128)
    assert sel.select(f) == "sfa"


def test_width_ceiling_defers_to_confident_measurement(sel):
    # A wide image with a *confidently* accurate predictor (concentrated
    # boundary distribution) must not be misrouted to SFA's wide launch.
    f = features(spec4_accuracy=0.95, spec16_accuracy=0.95,
                 reachable_width=500.0, n_states=500)
    assert sel.select(f) == "pm"


def test_unprofiled_width_trusts_measurement_alone(sel):
    # Legacy plans carry reachable_width == 0.0: only the measured floor
    # can fire.
    assert sel.select(features(spec16_accuracy=0.18)) != "sfa"
    assert sel.select(features(spec16_accuracy=0.05)) == "sfa"


def test_explain_mentions_sfa(sel):
    f = features(spec16_accuracy=0.05)
    assert "SFA" in sel.explain(f)
