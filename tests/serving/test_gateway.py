"""TCP gateway integration: real sockets, oracle-exact, drain-clean.

Every test drives a live :class:`~repro.gateway.GatewayServer` bound to
a free localhost port through real :class:`~repro.gateway.GatewayClient`
connections — nothing is mocked.  The acceptance contract:

* concurrent clients stay answer-identical to the sequential ``dfa.run``
  oracle through the full wire round-trip;
* a capacity reject crosses the wire as the structured retryable
  ``code="capacity"`` error and costs zero compiles;
* a connection dropped mid-feed has its orphaned streams reaped;
* a graceful stop closes every stream and leaves no live revise thread.
"""

import asyncio
import contextlib
import threading
import time

import numpy as np
import pytest

from repro.errors import ServingError
from repro.framework import GSpecPalConfig
from repro.gateway import GatewayClient, GatewayServer, protocol
from repro.observability import MetricsRegistry
from repro.serving import MatcherPool, PlanCache
from repro.workloads import classic


@pytest.fixture()
def config():
    return GSpecPalConfig(n_threads=8)


@pytest.fixture()
def fsms():
    return (classic.keyword_scanner(b"token"), classic.divisibility(7))


@pytest.fixture()
def training(rng):
    return bytes(rng.integers(97, 123, size=512).astype(np.uint8))


def make_server(config, **pool_kwargs):
    registry = MetricsRegistry()
    pool = MatcherPool(
        PlanCache(capacity=8, config=config, metrics=registry),
        config=config,
        metrics=registry,
        **pool_kwargs,
    )
    return GatewayServer(pool, metrics=registry)


@contextlib.asynccontextmanager
async def serving(server):
    await server.start()
    try:
        yield server
    finally:
        await server.stop()


# ----------------------------------------------------------------------
# oracle equivalence over the wire
# ----------------------------------------------------------------------
def test_concurrent_clients_match_oracle(config, fsms, training, rng):
    """4 clients × 2 streams each, interleaved feeds, audited at close."""
    segments = {
        (c, s): [
            bytes(rng.integers(97, 123, size=96).astype(np.uint8))
            for _ in range(3)
        ]
        for c in range(4)
        for s in range(2)
    }

    async def client_task(server, c):
        dfa = fsms[c % 2]
        async with await GatewayClient.connect("127.0.0.1", server.port) as cl:
            sids = [
                await cl.open(dfa, training=training) for _ in range(2)
            ]
            for round_ in range(3):
                for s, sid in enumerate(sids):
                    out = await cl.feed(sid, segments[(c, s)][round_])
                    assert out["symbols"] == 96
            for s, sid in enumerate(sids):
                fed = b"".join(segments[(c, s)])
                summary = await cl.close_stream(sid)
                expected = dfa.run(fed)
                assert summary["end_state"] == expected
                assert summary["accepts"] == (expected in dfa.accepting)
                assert summary["segments"] == 3
                assert summary["total_symbols"] == len(fed)

    async def main():
        server = make_server(config)
        async with serving(server) as srv:
            await asyncio.gather(*(client_task(srv, c) for c in range(4)))
            # 8 wire streams, 2 automata: one compile per fingerprint.
            assert srv.pool.cache.compiles == 2
            assert srv.pool.active == 0
        assert srv.stats()["orphans_closed"] == 0

    asyncio.run(main())


def test_feed_many_gang_feeds_over_the_wire(config, fsms, training, rng):
    async def main():
        server = make_server(config, fused=True)
        dfa = fsms[0]
        async with serving(server) as srv:
            async with await GatewayClient.connect(
                "127.0.0.1", srv.port
            ) as cl:
                sids = [
                    await cl.open(dfa, training=training) for _ in range(3)
                ]
                fed = {sid: b"" for sid in sids}
                for _ in range(2):
                    batch = [
                        (
                            sid,
                            bytes(
                                rng.integers(97, 123, size=64).astype(
                                    np.uint8
                                )
                            ),
                        )
                        for sid in sids
                    ]
                    outcomes = await cl.feed_many(batch)
                    assert [o["stream"] for o in outcomes] == sids
                    for (sid, segment), outcome in zip(batch, outcomes):
                        fed[sid] += segment
                        assert outcome["ok"]
                        assert outcome["error"] is None
                        assert outcome["end_state"] == dfa.run(fed[sid])
                for sid in sids:
                    summary = await cl.close_stream(sid)
                    assert summary["end_state"] == dfa.run(fed[sid])

    asyncio.run(main())


# ----------------------------------------------------------------------
# capacity backpressure round-trip
# ----------------------------------------------------------------------
def test_capacity_reject_round_trip_costs_no_compile(config, fsms, training):
    """The wire-level reject is the pool's structured capacity error —
    and, with admission ordered before the cache, it compiles nothing."""

    async def main():
        server = make_server(config, max_streams=1)
        async with serving(server) as srv:
            a = await GatewayClient.connect("127.0.0.1", srv.port)
            b = await GatewayClient.connect("127.0.0.1", srv.port)
            try:
                sid = await a.open(fsms[0], training=training)
                with pytest.raises(ServingError) as excinfo:
                    await b.open(fsms[1], training=training)
                assert excinfo.value.code == "capacity"
                assert excinfo.value.retryable
                # The rejected tenant's automaton was never compiled.
                assert srv.pool.cache.compiles == 1
                assert srv.stats()["rejects"] == 1
                # Free the slot; the same open now succeeds.
                await a.close_stream(sid)
                sid_b = await b.open(fsms[1], training=training)
                await b.close_stream(sid_b)
                assert srv.pool.cache.compiles == 2
            finally:
                await a.aclose()
                await b.aclose()

    asyncio.run(main())


# ----------------------------------------------------------------------
# orphan reaping
# ----------------------------------------------------------------------
def test_mid_feed_disconnect_reaps_orphaned_streams(config, fsms, training):
    async def main():
        server = make_server(config, max_streams=2)
        async with serving(server) as srv:
            cl = await GatewayClient.connect("127.0.0.1", srv.port)
            sid = await cl.open(fsms[0], training=training)
            await cl.feed(sid, b"mid-feed traffic")
            assert srv.pool.active == 1
            # Vanish without closing the stream.
            await cl.aclose()
            deadline = time.monotonic() + 5.0
            while srv.pool.active and time.monotonic() < deadline:
                await asyncio.sleep(0.01)
            assert srv.pool.active == 0
            assert srv.stats()["orphans_closed"] == 1
            # The reaped slot is reusable immediately.
            async with await GatewayClient.connect(
                "127.0.0.1", srv.port
            ) as cl2:
                sid2 = await cl2.open(fsms[0], training=training)
                await cl2.close_stream(sid2)
        exported = srv.metrics.as_dict()
        assert exported["gateway.orphans_closed"] == 1

    asyncio.run(main())


# ----------------------------------------------------------------------
# graceful drain
# ----------------------------------------------------------------------
def test_stop_closes_streams_and_drains_revise_threads(
    config, fsms, training
):
    async def main():
        server = make_server(config, max_streams=4)
        await server.start()
        cl = await GatewayClient.connect("127.0.0.1", server.port)
        for _ in range(2):
            sid = await cl.open(fsms[0], training=training)
            await cl.feed(sid, b"left open on purpose")
        # A background revise still in flight when the drain starts.
        fake = threading.Thread(target=time.sleep, args=(0.2,))
        fake.start()
        server.pool._revising[9999] = fake
        stragglers = await server.stop()
        assert stragglers == 0
        assert not fake.is_alive()  # drain joined it
        assert server.pool.active == 0
        stats = server.stats()
        assert stats["drained_streams"] == 2
        assert stats["drain_stragglers"] == 0
        await cl.aclose()

    asyncio.run(main())


def test_stop_reports_stragglers_past_the_shared_deadline(config):
    async def main():
        server = GatewayServer(
            MatcherPool(config=config), drain_timeout=0.1
        )
        await server.start()
        release = threading.Event()
        slow = threading.Thread(target=release.wait)
        slow.start()
        server.pool._revising[1] = slow
        started = time.monotonic()
        stragglers = await server.stop()
        elapsed = time.monotonic() - started
        release.set()
        slow.join()
        assert stragglers == 1
        assert elapsed < 2.0  # one shared deadline, not per-thread
        assert server.stats()["drain_stragglers"] == 1

    asyncio.run(main())


# ----------------------------------------------------------------------
# protocol errors
# ----------------------------------------------------------------------
def test_feeding_another_connections_stream_is_not_owner(
    config, fsms, training
):
    async def main():
        server = make_server(config)
        async with serving(server) as srv:
            a = await GatewayClient.connect("127.0.0.1", srv.port)
            b = await GatewayClient.connect("127.0.0.1", srv.port)
            try:
                sid = await a.open(fsms[0], training=training)
                for attempt in (b.feed(sid, b"stolen"), b.close_stream(sid)):
                    with pytest.raises(ServingError) as excinfo:
                        await attempt
                    assert excinfo.value.code == "not_owner"
                # The rightful owner is unaffected.
                await a.feed(sid, b"still mine")
                await a.close_stream(sid)
            finally:
                await a.aclose()
                await b.aclose()

    asyncio.run(main())


def test_malformed_lines_answer_bad_request_without_dropping(config):
    async def main():
        server = make_server(config)
        async with serving(server) as srv:
            reader, writer = await asyncio.open_connection(
                "127.0.0.1", srv.port
            )
            try:
                writer.write(b"this is not json\n")
                await writer.drain()
                response = protocol.decode_line(await reader.readline())
                assert response["ok"] is False
                assert response["error"]["code"] == "bad_request"
                assert response["id"] is None
                # Same connection survives and handles a proper request.
                writer.write(protocol.encode_line({"op": "bogus", "id": 7}))
                await writer.drain()
                response = protocol.decode_line(await reader.readline())
                assert response["ok"] is False
                assert response["error"]["code"] == "bad_request"
                assert response["id"] == 7
                writer.write(protocol.encode_line({"op": "stats", "id": 8}))
                await writer.drain()
                response = protocol.decode_line(await reader.readline())
                assert response["ok"] is True
                assert response["stats"]["protocol_version"] == 1
            finally:
                writer.close()
                await writer.wait_closed()

    asyncio.run(main())


def test_stats_op_exposes_gateway_and_pool_counters(config, fsms, training):
    async def main():
        server = make_server(config)
        async with serving(server) as srv:
            async with await GatewayClient.connect(
                "127.0.0.1", srv.port
            ) as cl:
                sid = await cl.open(fsms[0], training=training)
                stats = await cl.stats()
                assert stats["protocol_version"] == 1
                assert stats["active_connections"] == 1
                assert stats["pool"]["active_streams"] == 1
                assert stats["requests"] >= 2
                await cl.close_stream(sid)

    asyncio.run(main())
