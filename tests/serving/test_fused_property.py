"""Property-based gang-scheduling audit: fused serving vs the DFA oracle.

Hypothesis drives a random serving schedule — interleaved opens, gang
feeds of ragged (empty included) segments, duplicate stream ids inside one
``feed_many`` call, and closes — over a fused :class:`MatcherPool` with
mixed fingerprints.  Whatever the schedule, every stream's final state at
close must equal ``dfa.run`` over exactly the bytes that stream was fed,
in order.  ``fused_min_streams=1`` forces *every* group through the fused
dispatch path, so no example silently falls back to the per-stream path.

Plans are compiled once into a module-shared cache; each example gets a
fresh pool over the warm cache, so examples stay cheap enough to shrink.
"""

import numpy as np
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.framework import GSpecPalConfig
from repro.serving import MatcherPool, PlanCache
from repro.workloads import classic

CONFIG = GSpecPalConfig(n_threads=8, backend="fast")
DFAS = (classic.keyword_scanner(b"prop"), classic.divisibility(11))
_TRAIN_RNG = np.random.default_rng(20260808)
TRAININGS = tuple(
    bytes(_TRAIN_RNG.integers(97, 123, size=512).astype(np.uint8))
    for _ in DFAS
)
#: Warm, shared across examples: each fingerprint compiles exactly once
#: for the whole module, not once per shrink attempt.
SHARED_CACHE = PlanCache(capacity=len(DFAS), config=CONFIG)

segment = st.binary(max_size=48)

op = st.one_of(
    st.tuples(st.just("open"), st.integers(min_value=0, max_value=1)),
    st.tuples(
        st.just("gang"),
        st.lists(segment, min_size=1, max_size=6),
    ),
    st.tuples(st.just("dup"), segment, segment),
    st.tuples(st.just("close"), st.integers(min_value=0, max_value=63)),
)


@settings(
    max_examples=40,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(schedule=st.lists(op, min_size=1, max_size=24))
def test_fused_schedule_matches_oracle(schedule):
    pool = MatcherPool(
        SHARED_CACHE,
        config=CONFIG,
        backend="fast",
        fused=True,
        fused_min_streams=1,
        max_streams=32,
    )
    #: [stream_id, dfa index, bytearray of everything fed]
    open_streams = []

    def check_close(slot):
        sid, didx, fed = open_streams.pop(slot)
        stats = pool.close(sid)
        expected = DFAS[didx].run(bytes(fed))
        assert stats.end_state == expected
        assert stats.accepts == (expected in DFAS[didx].accepting)
        assert stats.total_symbols == len(fed)

    for action in schedule:
        if action[0] == "open":
            didx = action[1]
            if len(open_streams) >= 32:
                continue
            sid = pool.open(DFAS[didx], training_input=TRAININGS[didx])
            open_streams.append([sid, didx, bytearray()])
        elif action[0] == "gang":
            if not open_streams:
                continue
            segments = action[1]
            feeds = [
                (open_streams[i % len(open_streams)][0], seg)
                for i, seg in enumerate(segments)
            ]
            outcomes = pool.feed_many(feeds)
            for i, (seg, outcome) in enumerate(zip(segments, outcomes)):
                assert outcome.ok, outcome
                assert outcome.symbols == len(seg)
                open_streams[i % len(open_streams)][2] += seg
        elif action[0] == "dup":
            # The same stream id twice in one call: segments must apply
            # in input order (wave splitting), never interleaved or lost.
            if not open_streams:
                continue
            first, second = action[1], action[2]
            sid = open_streams[0][0]
            outcomes = pool.feed_many([(sid, first), (sid, second)])
            assert all(o.ok for o in outcomes)
            open_streams[0][2] += first + second
            # After both segments the carried state reflects first+second.
            didx = open_streams[0][1]
            assert outcomes[1].end_state == DFAS[didx].run(
                bytes(open_streams[0][2])
            )
        else:  # close
            if not open_streams:
                continue
            check_close(action[1] % len(open_streams))

    while open_streams:
        check_close(len(open_streams) - 1)
    assert pool.active == 0


@settings(max_examples=20, deadline=None)
@given(
    lengths=st.lists(
        st.integers(min_value=0, max_value=200), min_size=1, max_size=16
    ),
    data=st.data(),
)
def test_fused_ragged_widths_match_oracle(lengths, data):
    """One gang dispatch over maximally ragged lengths (0..200) stays
    bit-identical to running each stream's bytes through ``dfa.run``."""
    rng = np.random.default_rng(data.draw(st.integers(0, 2**31)))
    pool = MatcherPool(
        SHARED_CACHE,
        config=CONFIG,
        backend="fast",
        fused=True,
        fused_min_streams=1,
        max_streams=len(lengths),
    )
    sids, fed = [], []
    for n in lengths:
        sids.append(pool.open(DFAS[0], training_input=TRAININGS[0]))
        fed.append(bytes(rng.integers(97, 123, size=n).astype(np.uint8)))
    outcomes = pool.feed_many(list(zip(sids, fed)))
    assert all(o.ok and o.fused for o in outcomes)
    for sid, payload in zip(sids, fed):
        assert pool.close(sid).end_state == DFAS[0].run(payload)
