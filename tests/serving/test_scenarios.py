"""Scenario schema + runner: seeded documents, gated JSONL results.

Covers the declarative layer (validation errors name the offending
field, builtins validate, JSON/YAML interchangeability, seeded schedule
determinism) and the runner end-to-end: a small scenario through an
embedded gateway over real sockets must be oracle-exact, write one JSONL
line per request, and fail its report when a regression gate trips.
"""

import json

import pytest

from repro.errors import ScenarioError
from repro.scenarios import (
    BUILTIN_SCENARIOS,
    Scenario,
    build_schedule,
    builtin_scenario,
    load_scenario,
    run_scenario,
    scenario_from_text,
)


def small_scenario(**overrides):
    doc = {
        "id": "unit",
        "seed": 11,
        "clients": 2,
        "requests": 6,
        "warmup_requests": 2,
        "arrival": {"kind": "uniform", "rate_per_s": 500.0},
        "tenants": [
            {"name": "kw", "weight": 0.5, "fsm": {"kind": "keyword", "keyword": "abc"}},
            {"name": "par", "weight": 0.5, "fsm": {"kind": "parity"}},
        ],
        "segments": {
            "min_len": 16,
            "max_len": 48,
            "per_stream_min": 1,
            "per_stream_max": 2,
        },
        "pool": {"max_streams": 8},
        "backend": "sim",
    }
    doc.update(overrides)
    return Scenario.from_dict(doc)


# ----------------------------------------------------------------------
# schema validation
# ----------------------------------------------------------------------
def test_builtin_scenarios_validate_and_build():
    assert set(BUILTIN_SCENARIOS) == {"smoke", "capacity", "bursty-mix"}
    for name in BUILTIN_SCENARIOS:
        scenario = builtin_scenario(name)
        assert scenario.id == name
        assert scenario.total_requests > 0
        dfas, trainings = scenario.build_fleet()
        assert len(dfas) == len(scenario.tenants)
        assert len(trainings) == len(scenario.tenants)
        for dfa, training in zip(dfas, trainings):
            assert dfa.n_states >= 2
            assert len(training) == scenario.training_len

    with pytest.raises(ScenarioError, match="unknown builtin"):
        builtin_scenario("nope")


@pytest.mark.parametrize(
    "mutation, match",
    [
        ({"bogus_field": 1}, "unknown field"),
        ({"arrival": {"kind": "fractal"}}, "arrival.kind"),
        ({"tenants": []}, "non-empty list"),
        ({"backend": "gpu"}, "backend"),
        ({"requests": 0}, "requests"),
        (
            {"tenants": [{"name": "t", "fsm": {"kind": "wat"}}]},
            "fsm.kind",
        ),
        (
            {
                "tenants": [
                    {
                        "name": "t",
                        "weight": 0,
                        "fsm": {"kind": "parity"},
                    }
                ]
            },
            "weight",
        ),
        ({"segments": {"min_len": 0}}, "min_len"),
        ({"pool": {"max_streams": 0}}, "max_streams"),
    ],
)
def test_schema_rejects_bad_documents(mutation, match):
    doc = {
        "id": "bad",
        "tenants": [{"name": "t", "fsm": {"kind": "parity"}}],
    }
    doc.update(mutation)
    with pytest.raises(ScenarioError, match=match):
        Scenario.from_dict(doc)


def test_json_text_and_file_loading(tmp_path):
    doc = {
        "id": "from-json",
        "tenants": [{"name": "t", "fsm": {"kind": "divisibility", "modulus": 5}}],
    }
    scenario = scenario_from_text(json.dumps(doc))
    assert scenario.id == "from-json"

    path = tmp_path / "scenario.json"
    path.write_text(json.dumps(doc))
    assert load_scenario(path).id == "from-json"

    with pytest.raises(ScenarioError, match="invalid JSON"):
        scenario_from_text("{broken")
    with pytest.raises(ScenarioError, match="no scenario file"):
        load_scenario(tmp_path / "missing.yaml")


def test_yaml_loading_matches_json(tmp_path):
    pytest.importorskip("yaml")
    text = """
id: from-yaml
seed: 3
tenants:
  - name: kw
    fsm: {kind: keyword, keyword: abc}
"""
    scenario = scenario_from_text(text)
    assert scenario.id == "from-yaml"
    assert scenario.seed == 3
    path = tmp_path / "scenario.yaml"
    path.write_text(text)
    assert load_scenario(path) == scenario


def test_replace_returns_validated_copy():
    scenario = small_scenario()
    flipped = scenario.replace(backend="fast", seed=99)
    assert (flipped.backend, flipped.seed) == ("fast", 99)
    assert (scenario.backend, scenario.seed) == ("sim", 11)  # frozen original
    assert flipped.tenants == scenario.tenants


# ----------------------------------------------------------------------
# seeded schedule
# ----------------------------------------------------------------------
def test_schedule_is_deterministic_per_seed():
    scenario = small_scenario()
    first, second = build_schedule(scenario), build_schedule(scenario)
    assert len(first) == scenario.total_requests
    for a, b in zip(first, second):
        assert a.tenant_index == b.tenant_index
        assert a.segments == b.segments
        assert a.gap_s == b.gap_s
    assert [s.phase for s in first[:2]] == ["warmup", "warmup"]
    assert all(s.phase == "measure" for s in first[2:])

    reseeded = build_schedule(small_scenario(seed=12))
    assert any(
        a.segments != b.segments for a, b in zip(first, reseeded)
    )


# ----------------------------------------------------------------------
# runner end-to-end (embedded gateway, real sockets)
# ----------------------------------------------------------------------
def test_runner_smoke_writes_gated_jsonl(tmp_path):
    out = tmp_path / "results.jsonl"
    scenario = small_scenario()
    report = run_scenario(scenario, out_path=str(out))
    assert report.ok, report.summary()
    assert report.completed == scenario.requests
    assert report.failed == 0
    assert not report.oracle_failures
    assert report.drain_stragglers == 0
    assert report.gateway_stats["pool"]["active_streams"] == 0

    lines = [json.loads(line) for line in out.read_text().splitlines()]
    assert len(lines) == scenario.total_requests
    assert [line["request"] for line in lines] == list(
        range(scenario.total_requests)
    )
    phases = {line["phase"] for line in lines}
    assert phases == {"warmup", "measure"}
    for line in lines:
        assert line["scenario"] == "unit"
        assert line["ok"] is True
        assert line["oracle_ok"] is True
        assert line["tenant"] in {"kw", "par"}
        assert line["symbols"] >= 16


def test_runner_reports_gate_violation():
    scenario = small_scenario(
        gates={"min_throughput_sym_per_s": 1e12}
    )
    report = run_scenario(scenario)
    assert not report.ok
    assert report.gate_failures
    assert "min_throughput_sym_per_s" in report.gate_failures[0]
    # The traffic itself was still healthy — only the gate tripped.
    assert report.completed == scenario.requests
    assert not report.oracle_failures


def test_runner_counts_capacity_rejects():
    scenario = small_scenario(
        clients=4,
        requests=12,
        warmup_requests=0,
        pool={"max_streams": 1, "open_timeout": 0.0},
        retry={"max_attempts": 64, "backoff_s": 0.002},
        arrival={"kind": "bursty", "rate_per_s": 500.0, "burst_size": 4},
    )
    report = run_scenario(scenario)
    assert report.ok, report.summary()
    assert report.completed == 12
    assert report.reject_attempts > 0
    assert 0.0 < report.reject_rate < 1.0
