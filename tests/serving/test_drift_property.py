"""Property-based online-adaptation audit: drifting serving vs the oracle.

Hypothesis drives a random serving schedule — interleaved opens (selected
and forced-sequential streams), calm feeds, drifted-hot feeds, and closes
— over a drift-enabled :class:`MatcherPool` with a hair-trigger
synchronous :class:`DriftConfig`, so revises and segment-boundary
hot-swaps fire *inside* the schedule whenever the traffic happens to
collapse accuracy.  Whatever the schedule and however many swaps land,
every stream's final state at close must equal ``dfa.run`` over exactly
the bytes that stream was fed, in order — on both backends.

Plans are compiled once into a module-shared cache; revises mutate the
resident plan (that is the point), so later examples also exercise
serving from an already-revised artifact.
"""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.framework import GSpecPalConfig
from repro.serving import DriftConfig, MatcherPool, PlanCache
from repro.workloads import classic

CONFIG = GSpecPalConfig(n_threads=8)
DFA = classic.drifting_phase(64)
TRAINING = classic.drifting_phase_input(1024, drift_at=1.0, seed=3)
#: Warm, shared across examples: the fingerprint compiles exactly once
#: for the whole module, not once per shrink attempt.
SHARED_CACHE = PlanCache(capacity=2, config=CONFIG)
#: Hair-trigger so random schedules actually revise: one breaching
#: observation past an 8-boundary warm-up fires, inline.
DRIFT = DriftConfig(
    threshold=0.2,
    min_samples=8,
    ewma_alpha=0.8,
    hysteresis=1,
    synchronous=True,
)

seed = st.integers(min_value=0, max_value=2**31 - 1)
# Per-stream feeds partition each segment into n_threads chunks, so a
# segment must carry at least n_threads symbols (pre-existing contract —
# the fused path is the one that accepts ragged/empty segments).
length = st.integers(min_value=8, max_value=96)

op = st.one_of(
    st.tuples(st.just("open"), st.booleans()),
    st.tuples(st.just("calm"), st.integers(0, 63), length, seed),
    st.tuples(st.just("hot"), st.integers(0, 63), length, seed),
    st.tuples(st.just("close"), st.integers(0, 63)),
)


@pytest.mark.parametrize("backend", ["fast", "sim"])
@settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(schedule=st.lists(op, min_size=1, max_size=24))
def test_drifting_schedule_matches_oracle(backend, schedule):
    pool = MatcherPool(
        SHARED_CACHE,
        config=CONFIG,
        backend=backend,
        max_streams=16,
        drift=DRIFT,
    )
    #: [stream_id, bytearray of everything fed, forced?]
    open_streams = []

    def check_close(slot):
        sid, fed, forced = open_streams.pop(slot)
        stats = pool.close(sid)
        expected = int(DFA.run(bytes(fed)))
        assert stats.end_state == expected
        assert stats.accepts == (expected in DFA.accepting)
        assert stats.total_symbols == len(fed)
        if forced:
            assert stats.decision_path == ("forced",)
            assert stats.scheme_switches == 0

    for action in schedule:
        if action[0] == "open":
            if len(open_streams) >= 16:
                continue
            forced = action[1]
            sid = pool.open(
                DFA,
                training_input=TRAINING,
                scheme="seq" if forced else None,
            )
            open_streams.append([sid, bytearray(), forced])
        elif action[0] in ("calm", "hot"):
            if not open_streams:
                continue
            _, slot, n, s = action
            entry = open_streams[slot % len(open_streams)]
            segment = classic.drifting_phase_input(
                n, drift_at=1.0 if action[0] == "calm" else 0.0, seed=s
            )
            result = pool.feed(entry[0], segment)
            entry[1] += segment
            assert result.end_state == int(DFA.run(bytes(entry[1])))
        else:  # close
            if not open_streams:
                continue
            check_close(action[1] % len(open_streams))

    while open_streams:
        check_close(len(open_streams) - 1)
    assert pool.active == 0
    assert pool.stats()["revising"] == 0  # synchronous revises never linger
