"""PlanCache: LRU semantics and the one-compile-per-fingerprint guarantee."""

import numpy as np
import pytest

from repro.errors import ServingError
from repro.framework import GSpecPalConfig
from repro.serving import PlanCache
from repro.workloads import classic


@pytest.fixture()
def training(rng):
    return bytes(rng.integers(97, 123, size=512).astype(np.uint8))


@pytest.fixture()
def config():
    return GSpecPalConfig(n_threads=16)


def test_capacity_must_be_positive():
    with pytest.raises(ServingError):
        PlanCache(capacity=0)


def test_get_or_compile_compiles_exactly_once(scanner_dfa, training, config):
    cache = PlanCache(config=config)
    first = cache.get_or_compile(scanner_dfa, training)
    again = cache.get_or_compile(scanner_dfa, training)
    assert again is first
    assert cache.compiles == 1
    assert cache.hits == 1 and cache.misses == 1
    # Even with no training input a hit still serves.
    assert cache.get_or_compile(scanner_dfa) is first


def test_structurally_equal_dfas_share_one_plan(training, config):
    cache = PlanCache(config=config)
    a = classic.div7()
    b = classic.div7().renumbered(np.arange(a.n_states))  # same behaviour
    plan = cache.get_or_compile(a, training)
    assert cache.get_or_compile(b, training) is plan
    assert cache.compiles == 1


def test_miss_without_training_is_an_error(scanner_dfa):
    cache = PlanCache()
    with pytest.raises(ServingError, match="no training input"):
        cache.get_or_compile(scanner_dfa)


def test_lru_eviction_order(training, config):
    dfas = [classic.divisibility(n) for n in (3, 5, 7)]
    cache = PlanCache(capacity=2, config=config)
    p3, p5 = (cache.get_or_compile(d, training) for d in dfas[:2])
    cache.get(p3.fingerprint)  # refresh div3 → div5 is now LRU
    cache.get_or_compile(dfas[2], training)
    assert cache.evictions == 1
    assert p5.fingerprint not in cache
    assert p3.fingerprint in cache
    assert len(cache) == 2


def test_evicted_plan_recompiles(training, config):
    dfas = [classic.divisibility(n) for n in (3, 5)]
    cache = PlanCache(capacity=1, config=config)
    cache.get_or_compile(dfas[0], training)
    cache.get_or_compile(dfas[1], training)  # evicts div3
    cache.get_or_compile(dfas[0], training)  # must recompile
    assert cache.compiles == 3


def test_disk_spill_survives_restart(scanner_dfa, training, config, tmp_path):
    first = PlanCache(config=config, directory=tmp_path)
    plan = first.get_or_compile(scanner_dfa, training)
    assert first.compiles == 1

    # "Restart": a fresh cache over the same directory serves from disk.
    second = PlanCache(config=config, directory=tmp_path)
    reloaded = second.get_or_compile(scanner_dfa, training)
    assert second.compiles == 0
    assert second.disk_loads == 1
    assert reloaded.fingerprint == plan.fingerprint
    assert reloaded.scheme == plan.scheme


def test_corrupt_spill_recompiles(scanner_dfa, training, config, tmp_path):
    first = PlanCache(config=config, directory=tmp_path)
    plan = first.get_or_compile(scanner_dfa, training)
    spill = tmp_path / f"{plan.fingerprint}.npz"
    spill.write_bytes(b"not an npz")

    second = PlanCache(config=config, directory=tmp_path)
    reloaded = second.get_or_compile(scanner_dfa, training)
    # The destroyed container is discarded and the plan recompiled fresh.
    assert second.compiles == 1 and second.disk_loads == 0
    assert reloaded.fingerprint == plan.fingerprint


def test_stats_snapshot(scanner_dfa, training, config):
    cache = PlanCache(capacity=4, config=config)
    cache.get_or_compile(scanner_dfa, training)
    stats = cache.stats()
    assert stats["size"] == 1
    assert stats["capacity"] == 4
    assert stats["compiles"] == 1


def test_no_training_miss_error_is_structured(scanner_dfa):
    cache = PlanCache()
    with pytest.raises(ServingError, match="no training input") as excinfo:
        cache.get_or_compile(scanner_dfa)
    assert excinfo.value.code == "no_training_input"
    assert excinfo.value.fingerprint == scanner_dfa.fingerprint()
    # The failed leader released its single-flight slot for retries.
    assert cache.stats()["in_flight"] == 0


def test_stats_include_single_flight_fields(scanner_dfa, training, config):
    cache = PlanCache(config=config)
    cache.get_or_compile(scanner_dfa, training)
    stats = cache.stats()
    assert stats["compile_waits"] == 0
    assert stats["in_flight"] == 0
