"""Serving-tier concurrency: per-stream locks, single-flight compiles,
admission control, and the multithreaded soak audit.

The acceptance bar (ISSUE 5): ≥8 threads × ≥4 fingerprints × ≥200
interleaved operations with zero unexpected exceptions, exactly one
compile per distinct fingerprint, and every closed stream oracle-correct —
on both backends; plus a regression proving a cache hit is never blocked
behind another fingerprint's in-flight compile.
"""

import threading
from time import perf_counter, sleep

import numpy as np
import pytest

import repro.serving.cache as cache_mod
from repro.errors import SchemeError, ServingError
from repro.framework import GSpecPal, GSpecPalConfig
from repro.observability import MetricsRegistry
from repro.plan import compile_plan, load_plan, save_plan
from repro.serving import MatcherPool, PlanCache, run_stress
from repro.workloads import classic


@pytest.fixture()
def config():
    return GSpecPalConfig(n_threads=8)


@pytest.fixture()
def training(rng):
    return bytes(rng.integers(97, 123, size=512).astype(np.uint8))


@pytest.fixture()
def fsms():
    return (classic.keyword_scanner(b"alpha"), classic.divisibility(7))


# ----------------------------------------------------------------------
# the soak audit (tentpole acceptance)
# ----------------------------------------------------------------------
@pytest.mark.parametrize("backend", ["sim", "fast"])
def test_soak_eight_threads_four_fingerprints(backend):
    report = run_stress(
        threads=8,
        fingerprints=4,
        operations=240,
        seed=11,
        backend=backend,
    )
    assert report.ok, report.summary()
    assert report.errors == []
    assert report.oracle_failures == []
    # Exactly one compile per distinct fingerprint, however many threads
    # raced the cold cache at the barrier.
    assert report.fingerprints_used == 4
    assert report.compiles == 4
    assert report.pool_stats["cache"]["compiles"] == 4
    # No stream summary lost or duplicated.
    assert report.streams_opened == report.streams_closed
    assert report.pool_stats["active_streams"] == 0


@pytest.mark.parametrize("backend", ["sim", "fast"])
def test_drift_soak_revises_under_contention(backend):
    """Drift mode: live traffic collapses mid-run, background revises and
    segment-boundary hot-swaps race the worker threads, and every closed
    stream still matches the oracle bit-for-bit."""
    report = run_stress(
        threads=8,
        fingerprints=2,
        operations=300,
        seed=3,
        backend=backend,
        drift=True,
    )
    assert report.ok, report.summary()
    assert report.drift_revise_errors == 0
    # The distribution shift provoked at least one background revise, and
    # streams open across the swap were switched at a segment boundary.
    assert report.drift_revises >= 1
    assert report.drift_swaps >= 1
    assert report.scheme_switches >= 1
    # Revises never touch the compiler: still one compile per class.
    assert report.compiles == report.fingerprints_used
    assert report.pool_stats["revising"] == 0


def test_soak_is_deterministic_per_stream():
    a = run_stress(threads=4, fingerprints=2, operations=80, seed=5)
    b = run_stress(threads=4, fingerprints=2, operations=80, seed=5)
    assert a.ok and b.ok
    # Thread interleaving may differ, but the schedule — and therefore the
    # amount of traffic — is seed-determined.
    assert a.streams_opened == b.streams_opened
    assert a.segments_fed == b.segments_fed


# ----------------------------------------------------------------------
# single-flight compiles
# ----------------------------------------------------------------------
def test_racing_cold_compiles_are_single_flight(training, config):
    dfa = classic.keyword_scanner(b"race")
    cache = PlanCache(config=config)
    n = 6
    real_compile = cache_mod.compile_plan

    def slow_compile(*args, **kwargs):
        # Hold the compile until every other racer is parked on the
        # in-flight event, so the overlap is guaranteed, not lucky timing.
        deadline = perf_counter() + 10.0
        while cache.compile_waits < n - 1 and perf_counter() < deadline:
            sleep(0.001)
        return real_compile(*args, **kwargs)

    cache_mod.compile_plan = slow_compile
    try:
        barrier = threading.Barrier(n)
        results, errors = [], []

        def racer():
            try:
                barrier.wait(timeout=10)
                results.append(cache.get_or_compile(dfa, training))
            except Exception as exc:  # noqa: BLE001
                errors.append(exc)

        threads = [threading.Thread(target=racer) for _ in range(n)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=30)
    finally:
        cache_mod.compile_plan = real_compile

    assert errors == []
    assert cache.compiles == 1  # one leader compiled; everyone else waited
    assert cache.compile_waits == n - 1
    assert len({id(plan) for plan in results}) == 1  # same plan object
    assert cache.stats()["in_flight"] == 0


def test_cache_hit_unblocked_while_other_compile_in_flight(training, config):
    """Regression: the global compile-under-lock is gone — a hit on
    fingerprint B completes while fingerprint A's compile is in flight."""
    slow_dfa = classic.keyword_scanner(b"slowpoke")
    hit_dfa = classic.divisibility(5)
    cache = PlanCache(config=config)
    resident = compile_plan(hit_dfa, training, config)
    cache.put(resident)

    gate = threading.Event()
    entered = threading.Event()
    real_compile = cache_mod.compile_plan

    def blocked_compile(*args, **kwargs):
        entered.set()
        assert gate.wait(timeout=30), "test deadlock: gate never opened"
        return real_compile(*args, **kwargs)

    cache_mod.compile_plan = blocked_compile
    try:
        leader = threading.Thread(
            target=cache.get_or_compile, args=(slow_dfa, training)
        )
        leader.start()
        assert entered.wait(timeout=30)  # A's compile is now in flight
        assert cache.stats()["in_flight"] == 1

        started = perf_counter()
        hit = cache.get_or_compile(hit_dfa)  # no training: must be a hit
        elapsed = perf_counter() - started
        assert hit is resident
        assert elapsed < 1.0, f"hit blocked {elapsed:.1f}s behind a compile"
        assert not gate.is_set()  # A really was still compiling
    finally:
        gate.set()
        cache_mod.compile_plan = real_compile
    leader.join(timeout=30)
    assert cache.compiles == 1
    assert slow_dfa.fingerprint() in cache


def test_leader_compile_failure_propagates_then_clears(training, config):
    dfa = classic.keyword_scanner(b"doomed")
    cache = PlanCache(config=config)
    real_compile = cache_mod.compile_plan
    boom = RuntimeError("compile exploded")

    started = threading.Event()
    release = threading.Event()

    def failing_compile(*args, **kwargs):
        started.set()
        assert release.wait(timeout=30)
        raise boom

    cache_mod.compile_plan = failing_compile
    try:
        leader_error, waiter_error = [], []

        def leader():
            try:
                cache.get_or_compile(dfa, training)
            except Exception as exc:  # noqa: BLE001
                leader_error.append(exc)

        def waiter():
            started.wait(timeout=30)
            try:
                cache.get_or_compile(dfa, training)
            except Exception as exc:  # noqa: BLE001
                waiter_error.append(exc)
            finally:
                release.set()

        threads = [
            threading.Thread(target=leader),
            threading.Thread(target=waiter),
        ]
        for t in threads:
            t.start()
        # Let the waiter park on the in-flight event before the leader
        # fails (release is set by the waiter thread itself only after it
        # issued its call — a best-effort ordering; either path is legal).
        sleep(0.05)
        release.set()
        for t in threads:
            t.join(timeout=30)
    finally:
        cache_mod.compile_plan = real_compile

    assert leader_error and leader_error[0] is boom
    # A waiter that overlapped the failed compile sees the same error; one
    # that arrived after the in-flight entry cleared becomes a new leader
    # (and fails on the restored real compile path only if it raced — here
    # the real compile works, so it may simply succeed).
    if waiter_error:
        assert waiter_error[0] is boom
    # The failed fingerprint is compilable again — single-flight state
    # cleared, and a retry with the real compiler succeeds.
    assert cache.stats()["in_flight"] == 0
    plan = cache.get_or_compile(dfa, training)
    assert plan.fingerprint == dfa.fingerprint()


# ----------------------------------------------------------------------
# per-stream locking and the feed/close race
# ----------------------------------------------------------------------
def test_feed_racing_close_gets_structured_error(fsms, training, config):
    pool = MatcherPool(config=config)
    sid = pool.open(fsms[0], training_input=training)
    entry = pool._entry(sid)  # a feed's lookup, frozen in time
    pool.close(sid)  # ... the close wins the race
    with pytest.raises(ServingError) as excinfo:
        pool._feed_entry(sid, entry, b"abc")
    assert excinfo.value.code == "stream_closed"
    assert excinfo.value.stream_id == sid
    assert not excinfo.value.retryable


def test_unknown_stream_error_is_structured(config):
    pool = MatcherPool(config=config)
    with pytest.raises(ServingError) as excinfo:
        pool.feed(1234, b"x")
    assert excinfo.value.code == "unknown_stream"
    assert excinfo.value.stream_id == 1234


def test_closed_stream_classified_exactly(fsms, training, config):
    """A just-closed id reports stream_closed everywhere — the lone feed
    path, feed_many outcomes, and a second close — while a never-opened id
    stays unknown_stream; ids are never reused, so the classification is
    exact, not a race-dependent guess."""
    pool = MatcherPool(config=config)
    sid = pool.open(fsms[0], training_input=training)
    pool.feed(sid, b"abc" * 64)
    pool.close(sid)

    with pytest.raises(ServingError) as excinfo:
        pool.feed(sid, b"xyz" * 64)
    assert excinfo.value.code == "stream_closed"
    assert excinfo.value.stream_id == sid

    with pytest.raises(ServingError) as excinfo:
        pool.close(sid)
    assert excinfo.value.code == "stream_closed"

    outcomes = pool.feed_many([(sid, b"xyz" * 64), (sid + 999, b"xyz" * 64)])
    assert not outcomes[0].ok
    assert outcomes[0].error.code == "stream_closed"
    assert not outcomes[1].ok
    assert outcomes[1].error.code == "unknown_stream"


def test_concurrent_feeds_to_one_stream_never_interleave(
    fsms, training, config
):
    """Two threads hammering the same stream id must serialize: the final
    state equals the oracle over *some* permutation-free concatenation —
    here every thread feeds the same bytes, so any serialized order gives
    the same oracle state, while a lost-update race would not."""
    dfa = fsms[1]  # divisibility: every byte advances the counter
    pool = MatcherPool(config=config)
    sid = pool.open(dfa, training_input=training)
    segment = b"a" * 64
    per_thread = 8
    errors = []
    barrier = threading.Barrier(4)

    def hammer():
        try:
            barrier.wait(timeout=10)
            for _ in range(per_thread):
                pool.feed(sid, segment)
        except Exception as exc:  # noqa: BLE001
            errors.append(exc)

    threads = [threading.Thread(target=hammer) for _ in range(4)]
    for t in threads:
        t.start()
    for t in threads:
        t.join(timeout=60)
    assert errors == []
    stats = pool.close(sid)
    assert stats.segments == 4 * per_thread
    assert stats.total_symbols == 4 * per_thread * 64
    assert stats.end_state == dfa.run(segment * (4 * per_thread))


def test_close_summary_reports_public_scheme(fsms, training, config):
    pool = MatcherPool(config=config)
    sid = pool.open(fsms[0], training_input=training, scheme="rr")
    session = pool._entry(sid).session
    assert session.scheme == "rr"  # public property, pre-feed
    pool.feed(sid, b"abc" * 20)
    assert session.scheme == "rr"
    assert pool.close(sid).scheme == "rr"


# ----------------------------------------------------------------------
# admission control
# ----------------------------------------------------------------------
def test_capacity_rejection_is_structured_and_retryable(
    fsms, training, config
):
    pool = MatcherPool(config=config, max_streams=1)
    pool.open(fsms[0], training_input=training)
    with pytest.raises(ServingError) as excinfo:
        pool.open(fsms[0], training_input=training)
    assert excinfo.value.code == "capacity"
    assert excinfo.value.retryable
    assert pool.stats()["rejected"] == 1


def test_bounded_wait_open_succeeds_when_slot_frees(fsms, training, config):
    pool = MatcherPool(config=config, max_streams=1, open_timeout=10.0)
    first = pool.open(fsms[0], training_input=training)
    closer = threading.Timer(0.1, pool.close, args=(first,))
    closer.start()
    try:
        second = pool.open(fsms[0], training_input=training)  # blocks briefly
    finally:
        closer.join()
    assert pool.active == 1
    pool.close(second)
    assert pool.stats()["rejected"] == 0


def test_bounded_wait_open_times_out(fsms, training, config):
    pool = MatcherPool(config=config, max_streams=1, open_timeout=0.05)
    pool.open(fsms[0], training_input=training)
    with pytest.raises(ServingError) as excinfo:
        pool.open(fsms[0], training_input=training)
    assert excinfo.value.code == "capacity"
    assert excinfo.value.retryable


# ----------------------------------------------------------------------
# close_all race tolerance
# ----------------------------------------------------------------------
def test_close_all_tolerates_racing_closes(fsms, training, config):
    pool = MatcherPool(config=config)
    n = 12
    for _ in range(n):
        pool.open(fsms[0], training_input=training)
    results = {}
    barrier = threading.Barrier(2)
    errors = []

    def drain(key):
        try:
            barrier.wait(timeout=10)
            results[key] = pool.close_all()
        except Exception as exc:  # noqa: BLE001
            errors.append(exc)

    threads = [
        threading.Thread(target=drain, args=(k,)) for k in ("a", "b")
    ]
    for t in threads:
        t.start()
    for t in threads:
        t.join(timeout=30)
    assert errors == []  # racing closes are tolerated, never raised
    ids_a = {s.stream_id for s in results["a"]}
    ids_b = {s.stream_id for s in results["b"]}
    # The two calls partition the streams: no stream lost, none closed
    # (and summarized) twice.
    assert ids_a.isdisjoint(ids_b)
    assert len(ids_a) + len(ids_b) == n
    assert pool.active == 0


def test_close_all_returns_only_what_it_closed(fsms, training, config):
    pool = MatcherPool(config=config)
    keep = pool.open(fsms[0], training_input=training)
    pool.open(fsms[1], training_input=training)
    pool.close(keep)
    summaries = pool.close_all()
    assert len(summaries) == 1
    assert summaries[0].stream_id != keep


# ----------------------------------------------------------------------
# satellite regressions
# ----------------------------------------------------------------------
def test_equal_reloaded_plan_keeps_resident_matcher(
    fsms, training, config, tmp_path
):
    """put()-ing a plan reloaded from disk (same fingerprint + config) must
    not discard the resident matcher and its warmed simulator."""
    plan = compile_plan(fsms[0], training, config)
    pool = MatcherPool(config=config)
    sid = pool.open(plan=plan)
    matcher = pool._matchers[plan.fingerprint]

    reloaded = load_plan(save_plan(plan, tmp_path / "plan.npz"))
    assert reloaded is not plan  # different object, same artifact
    sid2 = pool.open(plan=reloaded)
    assert pool._matchers[plan.fingerprint] is matcher  # not rebuilt
    assert pool.stats()["matchers"] == 1
    for s in (sid, sid2):
        pool.feed(s, b"alpha" * 16)
    expected = fsms[0].run(b"alpha" * 16)
    assert pool.close(sid).end_state == expected
    assert pool.close(sid2).end_state == expected


def test_unknown_scheme_rejected_at_open_before_compile(
    fsms, training, config
):
    pool = MatcherPool(config=config)
    with pytest.raises(SchemeError, match="unknown scheme"):
        pool.open(fsms[0], training_input=training, scheme="bogus")
    # Fail-fast means fail *cheap*: no compile was paid for the typo, and
    # no stream slot leaked.
    assert pool.cache.stats()["compiles"] == 0
    assert pool.active == 0
    assert pool.stats()["opened"] == 0


def test_stream_rejects_unknown_scheme_at_open(fsms, training, config):
    pal = GSpecPal(fsms[0], config, training_input=training)
    with pytest.raises(SchemeError, match="unknown scheme"):
        pal.stream(scheme="bogus")


def test_spec_alias_accepted_at_open(fsms, training, config):
    pool = MatcherPool(config=config)
    sid = pool.open(
        fsms[0], training_input=training, scheme=f"pm-spec{config.spec_k}"
    )
    pool.feed(sid, b"xyz" * 10)
    pool.close(sid)


# ----------------------------------------------------------------------
# fused gang scheduling (ISSUE 6)
# ----------------------------------------------------------------------
@pytest.mark.parametrize("backend", ["sim", "fast"])
def test_fused_soak(backend):
    """The fused gang-scheduling soak: workers batch a segment for every
    stream they have open into one feed_many call, racing other workers'
    gang dispatches, opens and closes on the same fingerprints — and every
    closed stream still matches the sequential oracle exactly."""
    report = run_stress(
        threads=6,
        fingerprints=3,
        operations=240,
        seed=13,
        backend=backend,
        fused=True,
    )
    assert report.ok, report.summary()
    assert report.fused
    # The schedule actually exercised gang dispatch, not just fallbacks.
    assert report.fused_dispatches > 0
    assert report.fused_streams >= 2 * report.fused_dispatches
    assert report.streams_opened == report.streams_closed
    assert report.compiles == report.fingerprints_used


def test_close_during_fused_batch_is_serialized(fsms, training, config):
    """A close racing a fused dispatch lands strictly before or after the
    batch — the per-stream lock is held across the whole dispatch — and a
    feed whose stream lost the race reports stream_closed in its outcome
    instead of poisoning its batchmates."""
    pool = MatcherPool(config=config, fused=True, fused_min_streams=2)
    survivor = pool.open(fsms[0], training_input=training)
    victim = pool.open(fsms[0], training_input=training)
    stop = threading.Event()
    closed = threading.Event()
    errors = []
    survivor_fed = bytearray()
    closed_seen = 0

    def feeder():
        nonlocal closed_seen
        try:
            while not stop.is_set():
                outcomes = pool.feed_many(
                    [(survivor, b"alpha" * 8), (victim, b"beta" * 8)]
                )
                assert outcomes[0].ok  # batchmate never poisoned
                survivor_fed.extend(b"alpha" * 8)
                if not outcomes[1].ok:
                    # A once-open id is always classified as closed, never
                    # collapsed into unknown_stream — whether the dispatch
                    # lost the race before or after the entry was released.
                    assert outcomes[1].error.code == "stream_closed"
                    closed_seen += 1
                    if closed_seen >= 3:
                        break
        except Exception as exc:  # noqa: BLE001
            errors.append(exc)

    def closer():
        try:
            sleep(0.01)
            pool.close(victim)
            closed.set()
        except Exception as exc:  # noqa: BLE001
            errors.append(exc)

    threads = [
        threading.Thread(target=feeder),
        threading.Thread(target=closer),
    ]
    for t in threads:
        t.start()
    assert closed.wait(timeout=30)
    stop.set()
    for t in threads:
        t.join(timeout=30)
    assert errors == []
    stats = pool.close(survivor)
    assert stats.end_state == fsms[0].run(bytes(survivor_fed))
    assert stats.total_symbols == len(survivor_fed)


def test_feed_many_falls_back_below_min_width(fsms, training, config):
    """A group narrower than fused_min_streams runs the ordinary scheme
    path — and still lands the same answer."""
    registry = MetricsRegistry()
    pool = MatcherPool(
        config=config, fused=True, fused_min_streams=4, metrics=registry
    )
    sids = [pool.open(fsms[0], training_input=training) for _ in range(2)]
    outcomes = pool.feed_many([(sid, b"alpha" * 10) for sid in sids])
    assert all(o.ok and not o.fused for o in outcomes)
    exported = registry.as_dict()
    assert exported.get("serving.pool.fused_dispatches", 0) == 0
    assert exported["serving.pool.fused_fallbacks"] == 2
    for sid in sids:
        assert pool.close(sid).end_state == fsms[0].run(b"alpha" * 10)


def test_feed_many_mixed_fingerprints_fuse_per_group(fsms, training, config):
    registry = MetricsRegistry()
    pool = MatcherPool(config=config, fused=True, metrics=registry)
    a = [pool.open(fsms[0], training_input=training) for _ in range(3)]
    b = [pool.open(fsms[1], training_input=training) for _ in range(2)]
    feeds = [(sid, b"xyzzy" * 6) for sid in a + b]
    outcomes = pool.feed_many(feeds)
    assert all(o.ok and o.fused for o in outcomes)
    exported = registry.as_dict()
    # One dispatch per fingerprint group, widths 3 and 2.
    assert exported["serving.pool.fused_dispatches"] == 2
    assert exported["serving.pool.fused_streams"] == 5
    assert exported["serving.pool.fused_batch_width.max"] == 3
    assert exported["serving.pool.fused_batch_width.min"] == 2
    for sid in a:
        assert pool.close(sid).end_state == fsms[0].run(b"xyzzy" * 6)
    for sid in b:
        assert pool.close(sid).end_state == fsms[1].run(b"xyzzy" * 6)


def test_fused_stream_cycles_go_nan(fsms, training, config):
    """Fused execution is answer-only: a gang-fed stream's total_cycles is
    NaN-sticky, exactly like the fast backend's per-stream contract."""
    pool = MatcherPool(config=config, backend="sim", fused=True)
    sids = [pool.open(fsms[0], training_input=training) for _ in range(2)]
    pool.feed(sids[0], b"alpha" * 8)  # sim backend: real cycles so far
    outcomes = pool.feed_many([(sid, b"alpha" * 8) for sid in sids])
    assert all(o.ok and o.fused for o in outcomes)
    for sid in sids:
        assert np.isnan(pool.close(sid).total_cycles)


def test_fused_pool_invalid_min_streams_rejected(config):
    with pytest.raises(ServingError) as excinfo:
        MatcherPool(config=config, fused=True, fused_min_streams=0)
    assert excinfo.value.code == "invalid_argument"


# ----------------------------------------------------------------------
# serving metrics
# ----------------------------------------------------------------------
def test_serving_metrics_threaded_into_registry(fsms, training, config):
    registry = MetricsRegistry()
    pool = MatcherPool(config=config, metrics=registry, max_streams=1)
    sid = pool.open(fsms[0], training_input=training)
    pool.feed(sid, b"abc" * 20)
    with pytest.raises(ServingError):
        # Capacity reject: admission runs before the cache, so the
        # rejected open never records a lookup (rejections are cheap).
        pool.open(fsms[0], training_input=training)
    pool.close(sid)
    sid2 = pool.open(fsms[0], training_input=training)  # cache hit
    pool.close(sid2)

    exported = registry.as_dict()
    assert exported["serving.cache.compiles"] == 1
    assert exported["serving.cache.misses"] == 1
    assert exported["serving.cache.hits"] == 1
    assert exported["serving.cache.in_flight"] == 0
    assert exported["serving.pool.opened"] == 2
    assert exported["serving.pool.closed"] == 2
    assert exported["serving.pool.rejected"] == 1
    assert exported["serving.pool.active"] == 0
    assert exported["serving.pool.feeds"] == 1
    assert exported["serving.pool.feed_ms.count"] == 1
    assert exported["serving.pool.feed_ms.max"] > 0


def test_compile_wait_time_recorded(training, config):
    dfa = classic.keyword_scanner(b"waited")
    registry = MetricsRegistry()
    cache = PlanCache(config=config, metrics=registry)
    real_compile = cache_mod.compile_plan

    def slow_compile(*args, **kwargs):
        deadline = perf_counter() + 10.0
        while cache.compile_waits < 1 and perf_counter() < deadline:
            sleep(0.001)
        return real_compile(*args, **kwargs)

    cache_mod.compile_plan = slow_compile
    try:
        barrier = threading.Barrier(2)

        def racer():
            barrier.wait(timeout=10)
            cache.get_or_compile(dfa, training)

        threads = [threading.Thread(target=racer) for _ in range(2)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=30)
    finally:
        cache_mod.compile_plan = real_compile
    exported = registry.as_dict()
    assert exported["serving.cache.compile_waits"] == 1
    assert exported["serving.cache.compile_wait_ms.count"] == 1
    assert exported["serving.cache.compile_ms.count"] == 1
