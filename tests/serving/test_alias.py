"""Language-equivalence plan deduplication across the serving tier.

Two tenants submitting *different* DFA tables for the *same* language must
share one compiled plan (keyed by the canonical fingerprint), one spill
file, and one warmed matcher — with the aliasing visible in the stats.
"""

import numpy as np
import pytest

from repro.automata import canonical_fingerprint
from repro.framework import GSpecPalConfig
from repro.serving import MatcherPool, PlanCache
from repro.serving.stress import build_variant_fleet, run_stress
from repro.workloads import classic


@pytest.fixture()
def config():
    return GSpecPalConfig(n_threads=8)


@pytest.fixture()
def training(rng):
    return bytes(rng.integers(97, 123, size=512).astype(np.uint8))


@pytest.fixture()
def equivalent_pair(rng):
    """Two language-equivalent DFAs with distinct content fingerprints."""
    base = classic.divisibility(5)
    perm = rng.permutation(base.n_states)
    variant = base.renumbered(perm, name="div5-relabelled")
    assert base.fingerprint() != variant.fingerprint()
    assert canonical_fingerprint(base) == canonical_fingerprint(variant)
    return base, variant


def test_equivalent_dfas_compile_once(equivalent_pair, training, config):
    base, variant = equivalent_pair
    cache = PlanCache(config=config)

    plan = cache.get_or_compile(base, training)
    again = cache.get_or_compile(variant, training)

    assert again is plan
    assert cache.compiles == 1
    assert plan.canonical_fingerprint == canonical_fingerprint(base)
    stats = cache.stats()
    assert stats["alias_hits"] >= 1
    assert stats["dedupes"] >= 1
    assert stats["aliases"] == 2  # both content fps map to one class


def test_aliased_content_fingerprint_resolves_in_get(
    equivalent_pair, training, config
):
    base, variant = equivalent_pair
    cache = PlanCache(config=config)
    plan = cache.get_or_compile(base, training)
    cache.get_or_compile(variant, training)
    # Both content fingerprints now resolve to the single resident plan.
    assert cache.get(base.fingerprint()) is plan
    assert cache.get(variant.fingerprint()) is plan


def test_equivalent_dfas_share_one_spill_file(
    equivalent_pair, training, config, tmp_path
):
    base, variant = equivalent_pair
    first = PlanCache(config=config, directory=tmp_path)
    first.get_or_compile(base, training)
    first.get_or_compile(variant, training)
    spills = sorted(tmp_path.glob("*.npz"))
    assert [p.stem for p in spills] == [canonical_fingerprint(base)]

    # "Restart" under the *variant* fingerprint: the fresh cache has no
    # alias map, but canonicalization routes it to the spilled class.
    second = PlanCache(config=config, directory=tmp_path)
    served = second.get_or_compile(variant, training)
    assert second.compiles == 0
    assert served.canonical_fingerprint == canonical_fingerprint(base)


def test_pool_reuses_matcher_across_aliased_fingerprints(
    equivalent_pair, training, config, rng
):
    base, variant = equivalent_pair
    cache = PlanCache(config=config)
    pool = MatcherPool(cache, config=config)

    sid_a = pool.open(base, training_input=training)
    sid_b = pool.open(variant, training_input=training)
    assert cache.compiles == 1
    assert pool.stats()["matchers"] == 1  # one warmed matcher per class

    payload = bytes(rng.integers(97, 123, size=128).astype(np.uint8))
    pool.feed(sid_a, payload)
    pool.feed(sid_b, payload)
    stats_a, stats_b = pool.close(sid_a), pool.close(sid_b)

    # Same language, same input: verdicts agree, and both streams report
    # the one shared plan (first submitter's content fingerprint).
    assert stats_a.accepts == stats_b.accepts
    assert stats_a.canonical_fingerprint == stats_b.canonical_fingerprint
    assert stats_a.fingerprint == stats_b.fingerprint == base.fingerprint()


def test_variant_fleet_is_language_equivalent():
    base, grid = build_variant_fleet(3, variants=4, seed=7)
    assert len(grid) == 3
    for dfa, row in zip(base, grid):
        fps = {canonical_fingerprint(v) for v in row}
        assert fps == {canonical_fingerprint(dfa)}
        assert len({v.fingerprint() for v in row}) > 1


def test_stress_equivalent_mix_one_compile_per_class(tmp_path):
    report = run_stress(
        threads=4,
        fingerprints=3,
        operations=120,
        seed=11,
        equivalent_mix=True,
        variants=3,
        spill_dir=tmp_path,
    )
    assert report.ok, report.errors
    assert report.equivalent_mix and report.variants == 3
    assert report.compiles == report.fingerprints_used
    assert report.alias_hits > 0
    assert report.spill_files == report.fingerprints_used
