"""MatcherPool: many concurrent streams, one compile per automaton.

The acceptance scenario: ≥ 2 distinct FSMs × ≥ 8 concurrent interleaved
streams served through one LRU PlanCache with exactly one compile per
fingerprint, every stream state-equivalent to its sequential oracle.
"""

import numpy as np
import pytest

from repro.automata import compile_disjunction
from repro.errors import ServingError
from repro.framework import GSpecPalConfig
from repro.plan import compile_plan
from repro.serving import MatcherPool, PlanCache
from repro.workloads import classic


@pytest.fixture()
def config():
    return GSpecPalConfig(n_threads=8)


@pytest.fixture()
def fsms():
    return (
        compile_disjunction(["abc", "xy+z"], n_symbols=128, name="pool-scan"),
        classic.keyword_scanner(b"token"),
    )


@pytest.fixture()
def training(rng):
    return bytes(rng.integers(97, 123, size=512).astype(np.uint8))


def test_two_fsms_eight_streams_one_compile_each(fsms, training, config, rng):
    cache = PlanCache(capacity=4, config=config)
    pool = MatcherPool(cache, config=config)

    # 8 concurrent streams (4 per FSM), opened before any is closed.
    streams = []
    for i in range(8):
        dfa = fsms[i % 2]
        sid = pool.open(dfa, training_input=training)
        streams.append((sid, dfa, []))
    assert pool.active == 8
    assert cache.compiles == 2  # one per fingerprint, not per stream
    assert pool.stats()["matchers"] == 2  # one matcher per FSM too

    # Interleave segments round-robin across all open streams.
    for _ in range(3):
        for sid, dfa, fed in streams:
            piece = bytes(rng.integers(97, 123, size=96).astype(np.uint8))
            pool.feed(sid, piece)
            fed.append(piece)

    for sid, dfa, fed in streams:
        stats = pool.close(sid)
        assert stats.segments == 3
        assert stats.total_symbols == 3 * 96
        assert stats.end_state == dfa.run(b"".join(fed))
        assert stats.accepts == (stats.end_state in dfa.accepting)
    assert pool.active == 0
    assert cache.compiles == 2  # serving never re-compiled


def test_open_with_precompiled_plan_skips_compiling(fsms, training, config):
    plan = compile_plan(fsms[0], training, config)
    cache = PlanCache(config=config)
    pool = MatcherPool(cache, config=config)
    sid = pool.open(plan=plan)
    pool.feed(sid, b"abc" * 40)
    stats = pool.close(sid)
    assert stats.fingerprint == plan.fingerprint
    assert cache.compiles == 0
    assert plan.fingerprint in cache  # seeded for future streams


def test_forced_scheme_per_stream(fsms, training, config):
    pool = MatcherPool(config=config)
    sid = pool.open(fsms[0], training_input=training, scheme="rr")
    result = pool.feed(sid, b"xyz" * 40)
    assert result.scheme == "rr"
    assert pool.close(sid).scheme == "rr"


def test_default_scheme_is_the_plans(fsms, training, config):
    pool = MatcherPool(config=config)
    sid = pool.open(fsms[0], training_input=training)
    plan = pool.cache.get(fsms[0].fingerprint())
    pool.feed(sid, b"abc" * 40)
    closed = pool.close(sid)
    assert closed.scheme in (plan.scheme, f"pm-spec{config.spec_k}")


def test_unknown_and_closed_stream_ids_rejected(fsms, training, config):
    # Ids are allocated sequentially and never reused, so the pool can
    # tell "never existed" from "existed and closed" exactly.
    pool = MatcherPool(config=config)
    with pytest.raises(ServingError, match="unknown stream"):
        pool.feed(99, b"x")
    sid = pool.open(fsms[0], training_input=training)
    pool.close(sid)
    with pytest.raises(ServingError, match="closed"):
        pool.feed(sid, b"x")
    with pytest.raises(ServingError, match="closed"):
        pool.close(sid)


def test_open_needs_dfa_or_plan(config):
    pool = MatcherPool(config=config)
    with pytest.raises(ServingError, match="needs a dfa or a precompiled plan"):
        pool.open()


def test_stream_capacity_guard(fsms, training, config):
    pool = MatcherPool(config=config, max_streams=2)
    a = pool.open(fsms[0], training_input=training)
    pool.open(fsms[1], training_input=training)
    with pytest.raises(ServingError, match="capacity"):
        pool.open(fsms[0], training_input=training)
    pool.close(a)
    pool.open(fsms[0], training_input=training)  # freed slot reusable


def test_close_all(fsms, training, config):
    pool = MatcherPool(config=config)
    for _ in range(3):
        pool.open(fsms[0], training_input=training)
    summaries = pool.close_all()
    assert len(summaries) == 3
    assert pool.active == 0


# ----------------------------------------------------------------------
# admission-before-compile + drain deadline regressions
# ----------------------------------------------------------------------
def test_rejected_open_triggers_zero_compiles(fsms, training, config):
    """Admission runs before the compile: a tenant rejected at capacity
    must not pay (or even start) a cold compile for a stream it cannot
    open — rejections are the cheap backpressure signal."""
    cache = PlanCache(capacity=4, config=config)
    pool = MatcherPool(cache, config=config, max_streams=1)
    pool.open(fsms[0], training_input=training)
    assert cache.stats()["compiles"] == 1
    with pytest.raises(ServingError) as excinfo:
        pool.open(fsms[1], training_input=training)  # distinct, uncompiled
    assert excinfo.value.code == "capacity"
    stats = cache.stats()
    assert stats["compiles"] == 1  # fsms[1] never compiled
    assert stats["misses"] == 1  # ...and was never even looked up
    assert fsms[1].fingerprint() not in cache
    assert pool.stats()["reserved"] == 0  # no reservation leaked


def test_failed_open_releases_its_reserved_slot(fsms, training, config):
    """A compile failure inside open() must hand the reserved slot back,
    otherwise the pool leaks admission capacity on every failed open."""
    pool = MatcherPool(config=config, max_streams=1)
    with pytest.raises(ServingError) as excinfo:
        pool.open(fsms[0])  # cold cache, no training input: compile fails
    assert excinfo.value.code == "no_training_input"
    assert pool.stats()["reserved"] == 0
    sid = pool.open(fsms[0], training_input=training)  # slot still usable
    pool.close(sid)


def test_concurrent_opens_cannot_overadmit_during_compile(
    fsms, training, config
):
    """Reserved slots count against max_streams while compiles are in
    flight: two racing opens on a one-slot pool admit exactly one."""
    import threading

    pool = MatcherPool(config=config, max_streams=1)
    results, errors = [], []
    barrier = threading.Barrier(2)

    def racer():
        try:
            barrier.wait(timeout=10)
            results.append(pool.open(fsms[0], training_input=training))
        except ServingError as exc:
            errors.append(exc)

    threads = [threading.Thread(target=racer) for _ in range(2)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    assert len(results) == 1 and len(errors) == 1
    assert errors[0].code == "capacity"
    assert pool.active == 1


def test_drain_revisions_shared_deadline_and_straggler_count(config):
    """drain_revisions(timeout=...) bounds the *total* wait (one shared
    deadline, not N per-thread timeouts) and reports how many revise
    threads were still alive when it gave up."""
    import threading
    from time import perf_counter, sleep

    pool = MatcherPool(config=config)
    release = threading.Event()
    workers = [
        threading.Thread(target=release.wait, args=(5.0,), daemon=True)
        for _ in range(4)
    ]
    for i, worker in enumerate(workers):
        worker.start()
        pool._revising[f"fake-{i}"] = worker
    try:
        started = perf_counter()
        stragglers = pool.drain_revisions(timeout=0.2)
        elapsed = perf_counter() - started
        assert stragglers == 4
        # Per-thread timeouts would wait ~4 x 0.2s; the shared deadline
        # caps the whole drain near 0.2s.
        assert elapsed < 0.6
    finally:
        release.set()
        for worker in workers:
            worker.join(timeout=5)
        pool._revising.clear()
    sleep(0.01)
    assert pool.drain_revisions(timeout=0.2) == 0
