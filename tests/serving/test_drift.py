"""Online adaptation: drift detection, background revise, and plan hot-swap.

The acceptance bar (ISSUE 9): on the two-phase ``classic.drifting_phase``
workload a drift-enabled pool must run **exactly one** background revise
and segment-boundary hot-swap (PM → SFA) while every closed stream stays
bit-identical to the sequential ``dfa.run`` oracle — on both backends.
The :class:`DriftMonitor` unit suite pins the hysteresis contract (no
flapping, warm-up gate, fire-once latch, dormant on misprediction-free
schemes), and the cache suite pins revision monotonicity (a re-submitted
stale plan can never roll back a revise).
"""

from types import SimpleNamespace

import pytest

from repro.errors import ServingError
from repro.framework import GSpecPalConfig
from repro.observability import MetricsRegistry
from repro.plan import revise_plan
from repro.selector.features import FSMFeatures
from repro.serving import DriftConfig, DriftMonitor, MatcherPool, PlanCache
from repro.speculation import LiveObservations
from repro.workloads import classic


def _plan(scheme="pm", spec1=0.30, spec4=0.95, spec16=1.0, spec_k=4):
    """A duck-typed plan: DriftMonitor only reads scheme/features/config."""
    features = FSMFeatures(
        name="duck",
        n_states=64,
        spec1_accuracy=spec1,
        spec4_accuracy=spec4,
        spec16_accuracy=spec16,
        sensitivity=0.0,
        convergence_states=4.0,
        profiling_seconds=0.0,
        reachable_width=4.0,
    )
    return SimpleNamespace(
        scheme=scheme, features=features, config={"spec_k": spec_k}
    )


def _obs(hits, misses, segments=1, spec_k=4):
    return LiveObservations(
        scheme="pm-spec4",
        spec_k=spec_k,
        segments=segments,
        symbols=(hits + misses + 1) * 32,
        spec_hits=hits,
        spec_misses=misses,
    )


BAD = dict(hits=1, misses=15)  # accuracy 1/16 — far below the 0.95 anchor
GOOD = dict(hits=15, misses=1)  # accuracy 15/16 — right at the anchor


# ----------------------------------------------------------------------
# DriftConfig validation
# ----------------------------------------------------------------------
@pytest.mark.parametrize(
    "kwargs",
    [
        {"threshold": 0.0},
        {"threshold": 1.5},
        {"min_samples": 0},
        {"ewma_alpha": 0.0},
        {"ewma_alpha": 1.5},
        {"hysteresis": 0},
    ],
)
def test_config_rejects_bad_values(kwargs):
    with pytest.raises(ServingError) as info:
        DriftConfig(**kwargs)
    assert info.value.code == "drift-config"


# ----------------------------------------------------------------------
# DriftMonitor hysteresis contract
# ----------------------------------------------------------------------
def test_warmup_gate_blocks_early_firing():
    monitor = DriftMonitor(
        _plan(),
        DriftConfig(threshold=0.3, min_samples=50, ewma_alpha=1.0, hysteresis=1),
    )
    # Three collapsed observations = 48 boundaries: still warming up.
    for _ in range(3):
        assert monitor.observe(_obs(**BAD)) is False
    assert not monitor.fired
    # The fourth crosses min_samples and the sustained breach fires.
    assert monitor.observe(_obs(**BAD)) is True
    assert monitor.fired


def test_borderline_oscillation_never_fires():
    monitor = DriftMonitor(
        _plan(),
        DriftConfig(threshold=0.3, min_samples=1, ewma_alpha=1.0, hysteresis=3),
    )
    # Two breaches, then a recovery, forever: the consecutive-breach run
    # resets before reaching the hysteresis depth, so a borderline stream
    # oscillating around the threshold cannot flap the plan.
    for _ in range(10):
        assert monitor.observe(_obs(**BAD)) is False
        assert monitor.observe(_obs(**BAD)) is False
        assert monitor.observe(_obs(**GOOD)) is False
    assert not monitor.fired
    assert monitor.divergence < 0.3


def test_sustained_collapse_fires_exactly_once():
    monitor = DriftMonitor(
        _plan(),
        DriftConfig(threshold=0.3, min_samples=1, ewma_alpha=1.0, hysteresis=2),
    )
    assert monitor.observe(_obs(**BAD)) is False
    assert monitor.observe(_obs(**BAD)) is True
    # Latched: further evidence is absorbed but never re-fires.
    for _ in range(5):
        assert monitor.observe(_obs(**BAD, segments=2)) is False
    lag = monitor.rearm(_plan(scheme="sfa"))
    assert lag == 10  # 5 post-fire observations x 2 segments
    assert not monitor.fired
    assert monitor.samples == 0
    assert monitor.dormant  # re-armed onto a misprediction-free scheme


def test_snapshot_returns_breach_window_not_lifetime():
    monitor = DriftMonitor(
        _plan(),
        DriftConfig(threshold=0.3, min_samples=1, ewma_alpha=1.0, hysteresis=2),
    )
    for _ in range(3):
        monitor.observe(_obs(**GOOD))
    monitor.observe(_obs(**BAD))
    assert monitor.observe(_obs(**BAD)) is True
    window = monitor.snapshot()
    # Only the two breaching observations: the calm evidence that would
    # dilute the revise back toward the stale anchors is excluded.
    assert window.boundary_samples == 32
    assert window.spec_accuracy == pytest.approx(2 / 32)
    # The lifetime aggregate still saw everything.
    assert monitor.samples == 80


def test_sample_free_observations_never_move_the_ewma():
    monitor = DriftMonitor(
        _plan(scheme="sfa"),
        DriftConfig(threshold=0.3, min_samples=1, ewma_alpha=1.0, hysteresis=1),
    )
    assert monitor.dormant
    sketchy = LiveObservations(scheme="sfa", spec_k=1, segments=1, symbols=512)
    assert monitor.observe(sketchy) is False
    assert monitor.divergence == 0.0
    assert not monitor.fired


# ----------------------------------------------------------------------
# Cache revision monotonicity
# ----------------------------------------------------------------------
def test_cache_never_rolls_back_a_revision():
    dfa = classic.drifting_phase(128)
    training = classic.drifting_phase_input(4096, drift_at=1.0, seed=7)
    config = GSpecPalConfig(n_threads=32)
    cache = PlanCache(capacity=2, config=config)
    stale = cache.get_or_compile(dfa, training, config)
    revised = revise_plan(
        stale,
        LiveObservations(
            scheme="pm-spec4",
            spec_k=4,
            segments=2,
            symbols=4096,
            spec_hits=6,
            spec_misses=56,
        ),
    )
    assert revised.revision == stale.revision + 1
    cache.put(revised)
    cache.put(stale)  # a racing re-submit of the stale artifact
    resident = cache.get_or_compile(dfa, training, config)
    assert resident.revision == revised.revision
    assert resident.scheme == revised.scheme
    assert cache.stats()["compiles"] == 1  # revises never touch the compiler


# ----------------------------------------------------------------------
# Pool integration: the ISSUE 9 acceptance scenario
# ----------------------------------------------------------------------
def _drift_pool(backend, metrics, cache=None, **drift_kwargs):
    config = GSpecPalConfig(n_threads=32)
    cache = cache or PlanCache(capacity=2, config=config, metrics=metrics)
    kwargs = dict(
        threshold=0.3,
        min_samples=60,
        ewma_alpha=0.5,
        hysteresis=2,
        synchronous=True,
    )
    kwargs.update(drift_kwargs)
    pool = MatcherPool(
        cache,
        config=config,
        backend=backend,
        metrics=metrics,
        drift=DriftConfig(**kwargs),
    )
    return pool, cache, config


@pytest.mark.parametrize("backend", ["sim", "fast"])
def test_drifting_phase_revises_once_and_stays_oracle_exact(backend):
    dfa = classic.drifting_phase(128)
    training = classic.drifting_phase_input(4096, drift_at=1.0, seed=7)
    metrics = MetricsRegistry()
    pool, cache, config = _drift_pool(backend, metrics)
    compiled = cache.get_or_compile(dfa, training, config)
    assert compiled.scheme == "pm"  # calm training anchors to PM

    sid = pool.open(dfa, training_input=training)
    fed = bytearray()
    for i in range(4):
        seg = classic.drifting_phase_input(2048, drift_at=1.0, seed=100 + i)
        pool.feed(sid, seg)
        fed += seg
    for i in range(8):
        seg = classic.drifting_phase_input(2048, drift_at=0.0, seed=200 + i)
        pool.feed(sid, seg)
        fed += seg
    stats = pool.close(sid)

    # Bit-identical to the sequential oracle across the hot-swap.
    expected = int(dfa.run(bytes(fed)))
    assert stats.end_state == expected
    assert stats.accepts == (expected in dfa.accepting)
    assert stats.total_symbols == len(fed)
    # Exactly one segment-boundary swap, onto the misprediction-free plan.
    assert stats.scheme == "sfa"
    assert stats.scheme_switches == 1
    assert stats.decision_path == ("speculation_floor",)

    exported = metrics.as_dict()
    assert exported["drift.triggers"] == 1
    assert exported["drift.revises"] == 1
    assert exported["drift.swaps"] == 1
    assert exported.get("drift.revise_errors", 0) == 0

    revised = cache.get_or_compile(dfa, training, config)
    assert revised.revision == 1
    assert revised.scheme == "sfa"
    assert revised.live_provenance["prior_scheme"] == "pm"

    # A stream opened after the swap serves the revised selection from
    # its first segment — no switch, revised decision path.
    sid2 = pool.open(dfa, training_input=training)
    seg = classic.drifting_phase_input(1024, drift_at=0.0, seed=999)
    pool.feed(sid2, seg)
    stats2 = pool.close(sid2)
    assert stats2.scheme == "sfa"
    assert stats2.scheme_switches == 0
    assert stats2.decision_path == ("speculation_floor",)
    assert stats2.end_state == int(dfa.run(seg))


def test_forced_stream_is_exempt_from_swaps():
    dfa = classic.drifting_phase(128)
    training = classic.drifting_phase_input(4096, drift_at=1.0, seed=7)
    metrics = MetricsRegistry()
    pool, _, _ = _drift_pool("fast", metrics)
    sid = pool.open(dfa, training_input=training, scheme="seq")
    fed = bytearray()
    for i in range(6):
        seg = classic.drifting_phase_input(1024, drift_at=0.0, seed=300 + i)
        pool.feed(sid, seg)
        fed += seg
    stats = pool.close(sid)
    # Sequential runs verify no boundaries, so the monitor never fires,
    # and the per-stream override pins the scheme regardless.
    assert stats.scheme == "seq"
    assert stats.scheme_switches == 0
    assert stats.decision_path == ("forced",)
    assert stats.end_state == int(dfa.run(bytes(fed)))
    assert metrics.as_dict().get("drift.triggers", 0) == 0


def test_calm_traffic_never_triggers():
    dfa = classic.drifting_phase(128)
    training = classic.drifting_phase_input(4096, drift_at=1.0, seed=7)
    metrics = MetricsRegistry()
    pool, _, _ = _drift_pool("fast", metrics)
    sid = pool.open(dfa, training_input=training)
    for i in range(12):
        pool.feed(
            sid, classic.drifting_phase_input(2048, drift_at=1.0, seed=400 + i)
        )
    stats = pool.close(sid)
    assert stats.scheme_switches == 0
    assert metrics.as_dict().get("drift.triggers", 0) == 0


def test_background_revise_lands_after_drain():
    dfa = classic.drifting_phase(128)
    training = classic.drifting_phase_input(4096, drift_at=1.0, seed=7)
    metrics = MetricsRegistry()
    pool, cache, config = _drift_pool("fast", metrics, synchronous=False)
    sid = pool.open(dfa, training_input=training)
    fed = bytearray()
    for i in range(4):
        seg = classic.drifting_phase_input(2048, drift_at=1.0, seed=100 + i)
        pool.feed(sid, seg)
        fed += seg
    for i in range(8):
        seg = classic.drifting_phase_input(2048, drift_at=0.0, seed=200 + i)
        pool.feed(sid, seg)
        fed += seg
    pool.drain_revisions(timeout=60.0)
    stats = pool.close(sid)
    assert stats.end_state == int(dfa.run(bytes(fed)))
    exported = metrics.as_dict()
    assert exported["drift.revises"] == 1
    assert exported.get("drift.revise_errors", 0) == 0
    assert cache.get_or_compile(dfa, training, config).revision == 1
    assert pool.stats()["revising"] == 0
