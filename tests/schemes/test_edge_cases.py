"""Edge-case and stress tests across the scheme stack."""

import numpy as np
import pytest

from repro.automata.dfa import DFA
from repro.schemes import NFScheme, PMScheme, RRScheme, SREScheme, SpecSequentialScheme
from repro.workloads import classic
from repro.errors import SchemeError

SCHEMES = (SpecSequentialScheme, PMScheme, SREScheme, RRScheme, NFScheme)


@pytest.mark.parametrize("cls", SCHEMES)
class TestDegenerateInputs:
    def test_constant_symbol_stream(self, cls, div7):
        data = b"1" * 300
        s = cls.for_dfa(div7, n_threads=8, training_input=b"1" * 64)
        assert s.run(data).end_state == div7.run(data)

    def test_input_length_equals_threads(self, cls, div7):
        data = b"10101010"
        s = cls.for_dfa(div7, n_threads=8, training_input=b"10" * 16)
        assert s.run(data).end_state == div7.run(data)

    def test_input_shorter_than_threads_raises(self, cls, div7):
        s = cls.for_dfa(div7, n_threads=8, training_input=b"10" * 16)
        with pytest.raises(SchemeError):
            s.run(b"101")

    def test_single_state_dfa(self, cls):
        dfa = DFA(table=np.zeros((1, 16), dtype=np.int32), start=0, accepting={0})
        data = np.zeros(64, dtype=np.uint8)
        s = cls.for_dfa(dfa, n_threads=4, training_input=data[:16])
        result = s.run(data)
        assert result.end_state == 0
        assert result.accepts

    def test_two_symbol_alphabet(self, cls):
        dfa = classic.parity(n_symbols=2, tracked_symbol=1)
        rng = np.random.default_rng(3)
        data = rng.integers(0, 2, size=256).astype(np.uint8)
        s = cls.for_dfa(dfa, n_threads=8, training_input=data[:32])
        assert s.run(data).end_state == dfa.run(data)


class TestPathologicalFSMs:
    def test_large_rotator_never_in_queue_top(self, rng):
        """Truth rank can exceed every capacity: recovery must still finish
        (the frontier's must-be-done path is capacity-independent)."""
        rot = classic.cyclic_rotator(64, n_symbols=32)
        data = bytes(rng.integers(0, 32, size=512).astype(np.uint8))
        s = RRScheme.for_dfa(
            rot,
            n_threads=8,
            training_input=data[:64],
            own_capacity=1,
            others_capacity=1,
        )
        assert s.run(data).end_state == rot.run(data)

    def test_absorbing_fsm_trivially_easy(self, rng):
        scanner = classic.keyword_scanner(b"a")
        data = bytes(rng.integers(97, 99, size=256).astype(np.uint8))
        s = SREScheme.for_dfa(scanner, n_threads=8, training_input=data[:32])
        result = s.run(data)
        assert result.accepts
        # Once absorbed, forwarded end states match almost immediately —
        # at most the first boundary (pre-absorption) can mismatch.
        assert result.stats.mismatches <= 1
        assert result.stats.recovery_rounds <= 1

    def test_sticky_match_mid_stream(self, rng):
        scanner = classic.keyword_scanner(b"needle")
        payload = bytearray(rng.integers(97, 123, size=400).astype(np.uint8))
        payload[200:206] = b"needle"
        for cls in SCHEMES:
            s = cls.for_dfa(scanner, n_threads=8, training_input=bytes(payload[:64]))
            assert s.run(bytes(payload)).accepts, cls.__name__


class TestConfigBoundaries:
    def test_zero_others_capacity_still_correct(self, div7, rng):
        data = bytes(rng.integers(48, 50, size=400).astype(np.uint8))
        for cls in (RRScheme, NFScheme):
            s = cls.for_dfa(
                div7, n_threads=8, training_input=data[:64], others_capacity=0
            )
            assert s.run(data).end_state == div7.run(data)

    def test_spec_k_larger_than_queue(self, div7, rng):
        data = bytes(rng.integers(48, 50, size=400).astype(np.uint8))
        s = PMScheme.for_dfa(div7, n_threads=8, training_input=data[:64], k=100)
        assert s.run(data).end_state == div7.run(data)

    def test_many_threads_short_chunks(self, div7, rng):
        data = bytes(rng.integers(48, 50, size=256).astype(np.uint8))
        s = NFScheme.for_dfa(div7, n_threads=128, training_input=data[:64])
        assert s.run(data).end_state == div7.run(data)

    def test_same_scheme_object_reusable(self, div7, rng):
        """Queues are per-run state: a scheme instance must be reusable."""
        s = RRScheme.for_dfa(div7, n_threads=8, training_input=b"10" * 64)
        a = bytes(rng.integers(48, 50, size=200).astype(np.uint8))
        b = bytes(rng.integers(48, 50, size=200).astype(np.uint8))
        assert s.run(a).end_state == div7.run(a)
        assert s.run(b).end_state == div7.run(b)
        assert s.run(a).end_state == div7.run(a)  # and again
