"""Property-based tests (hypothesis): scheme correctness and FSM invariants
over randomly generated automata and inputs."""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.automata.dfa import DFA, run_lockstep
from repro.automata.minimize import minimize_dfa
from repro.schemes import NFScheme, PMScheme, RRScheme, SpecSequentialScheme, SREScheme
from repro.speculation.chunks import partition_input
from repro.speculation.predictor import predict_start_states, true_start_states

N_SYMBOLS = 8


@st.composite
def random_dfa(draw):
    """A random complete DFA over a small alphabet."""
    n_states = draw(st.integers(min_value=1, max_value=12))
    seed = draw(st.integers(min_value=0, max_value=2**31 - 1))
    rng = np.random.default_rng(seed)
    table = rng.integers(0, n_states, size=(n_states, N_SYMBOLS)).astype(np.int32)
    n_acc = draw(st.integers(min_value=0, max_value=n_states))
    accepting = frozenset(rng.choice(n_states, size=n_acc, replace=False).tolist())
    return DFA(table=table, start=0, accepting=accepting, name=f"rand{seed % 1000}")


@st.composite
def dfa_and_stream(draw, min_len=16, max_len=200):
    dfa = draw(random_dfa())
    length = draw(st.integers(min_value=min_len, max_value=max_len))
    seed = draw(st.integers(min_value=0, max_value=2**31 - 1))
    rng = np.random.default_rng(seed)
    data = rng.integers(0, N_SYMBOLS, size=length).astype(np.uint8)
    return dfa, data


@settings(max_examples=40, deadline=None)
@given(dfa_and_stream())
def test_lockstep_equals_scalar(case):
    dfa, data = case
    chunks = data[: len(data) // 4 * 4].reshape(4, -1)
    starts = np.arange(4) % dfa.n_states
    ends = run_lockstep(dfa.table, chunks, starts)
    for t in range(4):
        assert ends[t] == dfa.run(chunks[t], start=int(starts[t]))


@settings(max_examples=30, deadline=None)
@given(dfa_and_stream(min_len=32))
def test_minimization_preserves_membership(case):
    dfa, data = case
    m = minimize_dfa(dfa)
    assert m.n_states <= dfa.n_states
    assert m.accepts(data) == dfa.accepts(data)
    # Prefix invariance too (stronger than a single end check).
    for cut in (0, len(data) // 2, len(data)):
        assert m.accepts(data[:cut]) == dfa.accepts(data[:cut])


@settings(max_examples=25, deadline=None)
@given(dfa_and_stream(min_len=40))
def test_predictor_queue_always_contains_truth(case):
    """State convergence property: the true start state is always in QS_i."""
    dfa, data = case
    p = partition_input(data, 8)
    pred = predict_start_states(dfa, p)
    truth = true_start_states(dfa, p)
    for i in range(1, 8):
        assert pred.queues[i].rank_of(int(truth[i])) is not None


@settings(max_examples=20, deadline=None)
@given(dfa_and_stream(min_len=40))
def test_spec_seq_and_sre_match_sequential(case):
    dfa, data = case
    truth = dfa.run(data)
    training = data[: max(8, len(data) // 4)]
    for cls in (SpecSequentialScheme, SREScheme):
        scheme = cls.for_dfa(dfa, n_threads=8, training_input=training)
        assert scheme.run(data).end_state == truth


@settings(max_examples=20, deadline=None)
@given(dfa_and_stream(min_len=40))
def test_aggressive_schemes_match_sequential(case):
    dfa, data = case
    truth = dfa.run(data)
    training = data[: max(8, len(data) // 4)]
    for cls in (RRScheme, NFScheme, PMScheme):
        scheme = cls.for_dfa(dfa, n_threads=8, training_input=training)
        assert scheme.run(data).end_state == truth


@settings(max_examples=25, deadline=None)
@given(dfa_and_stream(min_len=16), st.integers(min_value=1, max_value=8))
def test_chunking_roundtrip(case, n_chunks):
    _, data = case
    if len(data) < n_chunks:
        return
    p = partition_input(data, n_chunks)
    rebuilt = np.concatenate([p.chunk(i) for i in range(n_chunks)])
    assert np.array_equal(rebuilt, data)


@settings(max_examples=25, deadline=None)
@given(dfa_and_stream(min_len=20))
def test_composition_property(case):
    """run(a ++ b) == run(b, start=run(a)) — the fact all chunk-parallel
    schemes rely on."""
    dfa, data = case
    cut = len(data) // 2
    mid = dfa.run(data[:cut])
    assert dfa.run(data) == dfa.run(data[cut:], start=mid)


@settings(max_examples=20, deadline=None)
@given(random_dfa(), st.integers(min_value=0, max_value=2**31 - 1))
def test_renumbering_preserves_language(dfa, seed):
    rng = np.random.default_rng(seed)
    perm = rng.permutation(dfa.n_states)
    other = dfa.renumbered(perm)
    data = rng.integers(0, N_SYMBOLS, size=64).astype(np.uint8)
    assert other.accepts(data) == dfa.accepts(data)
