"""White-box invariants of the frontier verification/recovery loop.

These are the correctness core of Algorithms 3-5: once the frontier passes
chunk ``f``, chunk ``f``'s end state is final and *true*, regardless of
which policy scheduled which recoveries.  Traced via ``keep_trace``.
"""

import numpy as np
import pytest

from repro.schemes import NFScheme, RRScheme, SREHOScheme, SREScheme
from repro.speculation.chunks import partition_input
from repro.workloads.components import counter_component
from repro.automata.dfa import DFA

POLICY_SCHEMES = (SREScheme, SREHOScheme, RRScheme, NFScheme)


@pytest.fixture(scope="module")
def case():
    comp = counter_component(7, n_symbols=32, seed=17)
    dfa = DFA(table=comp.table, start=0, accepting=frozenset({0}), name="inv")
    rng = np.random.default_rng(30)
    data = bytes(rng.integers(0, 32, size=960).astype(np.uint8))
    training = bytes(rng.integers(0, 32, size=240).astype(np.uint8))
    return dfa, data, training


def traced_run(cls, case, n_threads=12):
    dfa, data, training = case
    scheme = cls.for_dfa(
        dfa, n_threads=n_threads, training_input=training, keep_trace=True,
        use_transformation=False,  # exec space == user space for assertions
    )
    result = scheme.run(data)
    return scheme, result


def true_chunk_ends(dfa, data, n_chunks):
    p = partition_input(data, n_chunks)
    ends = np.empty(n_chunks, dtype=np.int64)
    state = dfa.start
    for i in range(n_chunks):
        state = dfa.run(p.chunk(i), start=state)
        ends[i] = state
    return ends


@pytest.mark.parametrize("cls", POLICY_SCHEMES)
class TestFrontierInvariants:
    def test_one_round_per_chunk(self, case, cls):
        scheme, result = traced_run(cls, case)
        assert len(scheme.last_trace) == 12
        assert [t.frontier for t in scheme.last_trace] == list(range(12))

    def test_verified_prefix_is_true_and_final(self, case, cls):
        """After round f, end_c[0..f] equals the ground truth — and never
        changes again in any later round."""
        dfa, data, _ = case
        scheme, result = traced_run(cls, case)
        truth = true_chunk_ends(dfa, data, 12)
        for trace in scheme.last_trace:
            f = trace.frontier
            assert np.array_equal(trace.end_c[: f + 1], truth[: f + 1]), f

    def test_matched_rounds_schedule_nothing(self, case, cls):
        scheme, _ = traced_run(cls, case)
        for trace in scheme.last_trace:
            if trace.matched:
                assert trace.active_threads == 0

    def test_mismatch_rounds_include_frontier_recovery(self, case, cls):
        """Every mismatched round must activate at least the frontier's
        must-be-done recovery (otherwise correctness would be luck)."""
        scheme, _ = traced_run(cls, case)
        for trace in scheme.last_trace:
            if not trace.matched:
                assert trace.active_threads >= 1

    def test_trace_disabled_by_default(self, case, cls):
        dfa, data, training = case
        scheme = cls.for_dfa(dfa, n_threads=12, training_input=training)
        scheme.run(data)
        assert scheme.last_trace == []
