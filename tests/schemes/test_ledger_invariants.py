"""Cost-ledger invariants, parametrized over every scheme.

The ledger is the reproduction's measurement instrument; these tests pin its
bookkeeping: phases sum to totals, access counts match transition counts,
recovery accounting is internally consistent, and the baseline orderings
that must hold by construction do hold.
"""

import numpy as np
import pytest

from repro.schemes import (
    EnumerativeScheme,
    NFScheme,
    PMScheme,
    RRScheme,
    SequentialScheme,
    SpecSequentialScheme,
    SREHOScheme,
    SREScheme,
)
from repro.workloads.components import counter_component
from repro.automata.dfa import DFA

ALL = [
    SequentialScheme,
    SpecSequentialScheme,
    PMScheme,
    SREScheme,
    SREHOScheme,
    RRScheme,
    NFScheme,
    EnumerativeScheme,
]


@pytest.fixture(scope="module")
def case():
    comp = counter_component(8, n_symbols=64, sync_symbols=(5,), seed=12)
    dfa = DFA(table=comp.table, start=0, accepting=frozenset({0}), name="ledger")
    rng = np.random.default_rng(21)
    data = bytes(rng.integers(0, 64, size=1600).astype(np.uint8))
    training = bytes(rng.integers(0, 64, size=400).astype(np.uint8))
    return dfa, data, training


@pytest.fixture(scope="module")
def results(case):
    dfa, data, training = case
    out = {}
    for cls in ALL:
        # Ledger invariants are sim-backend properties by definition.
        scheme = cls.for_dfa(dfa, n_threads=16, training_input=training, backend="sim")
        out[cls] = scheme.run(data)
    return out


@pytest.mark.parametrize("cls", ALL)
class TestLedger:
    def test_phase_cycles_sum_to_total(self, results, cls):
        stats = results[cls].stats
        assert sum(stats.phase_cycles.values()) == pytest.approx(stats.cycles)

    def test_memory_accesses_equal_transitions(self, results, cls):
        stats = results[cls].stats
        assert stats.shared_accesses + stats.global_accesses >= stats.transitions
        # (>= because VR staging also goes through shared memory)

    def test_launch_charged_once(self, results, cls):
        stats = results[cls].stats
        assert stats.phase_cycles.get("launch", 0) > 0

    def test_recovery_accounting_consistent(self, results, cls):
        stats = results[cls].stats
        assert len(stats.active_thread_samples) == stats.recovery_rounds
        if stats.recovery_rounds == 0:
            assert stats.recoveries_executed == 0
            assert stats.recovery_exec_cycles == 0.0
        assert stats.recovery_exec_cycles <= stats.cycles + 1e-9

    def test_accuracy_in_unit_interval(self, results, cls):
        acc = results[cls].stats.runtime_speculation_accuracy
        assert 0.0 <= acc <= 1.0

    def test_redundant_bounded_by_total(self, results, cls):
        stats = results[cls].stats
        assert 0 <= stats.redundant_transitions <= stats.transitions

    def test_chunk_ends_chain_is_consistent(self, results, case, cls):
        """The verified per-chunk ends must chain to the final state."""
        dfa, data, _ = case
        result = results[cls]
        if result.chunk_ends is None:
            pytest.skip("scheme does not expose chunk ends")
        assert int(result.chunk_ends[-1]) == result.end_state
        # And the chain must equal the true per-chunk ends (the sequential
        # scheme materializes a single chunk regardless of n_threads).
        from repro.speculation.chunks import partition_input

        p = partition_input(data, len(result.chunk_ends))
        state = dfa.start
        for i in range(p.n_chunks):
            state = dfa.run(p.chunk(i), start=state)
            assert int(result.chunk_ends[i]) == state, (cls.__name__, i)


def test_useful_work_identical_across_schemes(results):
    """Total minus redundant transitions ≈ the stream's length × 1 path —
    every scheme ultimately performs the same useful work."""
    baseline = None
    for cls, result in results.items():
        useful = result.stats.transitions - result.stats.redundant_transitions
        if cls is SequentialScheme:
            baseline = useful
    assert baseline == 1600  # one transition per input symbol
