"""``Scheme.for_dfa`` fallback behaviour: loud, observable, selectable.

The convenience constructor used to flip ``use_transformation`` off
silently when no training input was available, leaving callers wondering
where the hot RANK layout went.  It now warns
(:class:`~repro.errors.MissingTrainingInputWarning`), bumps a metrics
counter when a registry is attached, and threads backend selection through
to the simulator.
"""

import warnings

import numpy as np
import pytest

from repro.automata.dfa import DFA
from repro.errors import MissingTrainingInputWarning
from repro.gpu.memory import TableLayout
from repro.observability import MetricsRegistry
from repro.schemes import SpecSequentialScheme, SREScheme


@pytest.fixture()
def dfa():
    rng = np.random.default_rng(7)
    table = rng.integers(0, 6, size=(6, 8))
    return DFA(table=table, start=0, accepting=frozenset({2}), name="fallback")


def test_missing_training_input_warns(dfa):
    with pytest.warns(MissingTrainingInputWarning, match="frequency transformation"):
        scheme = SpecSequentialScheme.for_dfa(dfa, n_threads=4)
    # The fallback itself is unchanged: hash layout, no transformation.
    assert scheme.sim.transformed is None
    assert scheme.sim.memory.layout is TableLayout.HASH


def test_missing_training_input_bumps_counter(dfa):
    metrics = MetricsRegistry()
    with pytest.warns(MissingTrainingInputWarning):
        SpecSequentialScheme.for_dfa(dfa, n_threads=4, metrics=metrics)
    assert metrics.counter("scheme.transformation_auto_disabled").value == 1
    with pytest.warns(MissingTrainingInputWarning):
        SREScheme.for_dfa(dfa, n_threads=4, metrics=metrics)
    assert metrics.counter("scheme.transformation_auto_disabled").value == 2


def test_explicit_opt_out_is_silent(dfa):
    with warnings.catch_warnings():
        warnings.simplefilter("error", MissingTrainingInputWarning)
        SpecSequentialScheme.for_dfa(dfa, n_threads=4, use_transformation=False)


def test_training_input_is_silent_and_transforms(dfa):
    training = bytes(np.random.default_rng(1).integers(0, 8, size=64).astype(np.uint8))
    with warnings.catch_warnings():
        warnings.simplefilter("error", MissingTrainingInputWarning)
        scheme = SpecSequentialScheme.for_dfa(
            dfa, n_threads=4, training_input=training
        )
    assert scheme.sim.transformed is not None
    assert scheme.sim.memory.layout is TableLayout.RANK


def test_for_dfa_threads_backend_through(dfa):
    with pytest.warns(MissingTrainingInputWarning):
        fast = SpecSequentialScheme.for_dfa(dfa, n_threads=4, backend="fast")
        sim = SpecSequentialScheme.for_dfa(dfa, n_threads=4, backend="sim")
    assert fast.engine.name == "fast"
    assert sim.engine.name == "sim"
