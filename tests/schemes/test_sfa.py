"""SFA scheme: mapping construction, fingerprint dedupe, selection win."""

import numpy as np
import pytest

from repro.engine.fast import FastBackend
from repro.framework import GSpecPal, GSpecPalConfig
from repro.gpu.kernel import KernelPhase
from repro.observability import MetricsRegistry
from repro.schemes.sfa import SFAScheme, dedupe_chunks, fingerprint_chunks
from repro.selector.features import profile_features, reachable_width
from repro.speculation.chunks import partition_input
from repro.workloads import classic


@pytest.fixture(scope="module")
def affine():
    """The speculation-hopeless permutation automaton (accuracy ~ k/n)."""
    return classic.affine_permutation(128)


@pytest.fixture(scope="module")
def affine_io():
    rng = np.random.default_rng(9)
    train = bytes(rng.integers(0, 16, size=4096).astype(np.uint8))
    data = bytes(rng.integers(0, 16, size=8192).astype(np.uint8))
    return train, data


# ----------------------------------------------------------------------
# fingerprint dedupe
# ----------------------------------------------------------------------
class TestDedupe:
    def test_identical_chunks_share_one_group(self):
        partition = partition_input(b"0123" * 300, 12)
        reps, inverse = dedupe_chunks(partition.chunks, partition.lengths)
        # 1200/12 = 100 symbols per chunk; 100 % 4 == 0 so every chunk has
        # identical content: one group serves all twelve.
        assert reps.size == 1
        assert (inverse == 0).all()

    def test_distinct_chunks_stay_distinct(self, rng):
        data = rng.integers(0, 64, size=640).astype(np.uint8)
        partition = partition_input(data, 8)
        reps, inverse = dedupe_chunks(partition.chunks, partition.lengths)
        assert reps.size == 8
        np.testing.assert_array_equal(inverse, np.arange(8))

    def test_groups_have_equal_content(self, rng):
        period = rng.integers(0, 8, size=50).astype(np.uint8)
        data = np.tile(period, 40)  # 2000 symbols, heavy repetition
        partition = partition_input(data, 16)
        reps, inverse = dedupe_chunks(partition.chunks, partition.lengths)
        assert reps.size < 16
        for i in range(partition.n_chunks):
            r = int(reps[inverse[i]])
            np.testing.assert_array_equal(
                partition.chunk(i), partition.chunk(r)
            )

    def test_fingerprint_distinguishes_zero_prefixes(self):
        # The +1 symbol offset: a chunk of zeros must not hash like a
        # shorter zero chunk padded out.
        chunks = np.zeros((2, 4), dtype=np.int64)
        lengths = np.asarray([2, 4])
        fp = fingerprint_chunks(chunks, lengths)
        assert fp[0] != fp[1]

    def test_collision_guard_compares_content(self, monkeypatch):
        # Force every fingerprint to collide: grouping must fall back to
        # the exact content compare and still keep distinct chunks apart.
        import repro.schemes.sfa as sfa_mod

        monkeypatch.setattr(
            sfa_mod,
            "fingerprint_chunks",
            lambda chunks, lengths: np.zeros(chunks.shape[0], dtype=np.int64),
        )
        chunks = np.asarray([[1, 2, 3], [1, 2, 4], [1, 2, 3]], dtype=np.int64)
        lengths = np.asarray([3, 3, 3])
        reps, inverse = sfa_mod.dedupe_chunks(chunks, lengths)
        assert reps.size == 2
        assert inverse[0] == inverse[2] != inverse[1]


# ----------------------------------------------------------------------
# mapping construction
# ----------------------------------------------------------------------
class TestMappings:
    @pytest.mark.parametrize("backend", ["sim", "fast"])
    def test_mapping_rows_match_oracle(self, div7, backend, rng):
        data = rng.integers(0, 2, size=200).astype(np.uint8)
        scheme = SFAScheme.for_dfa(
            div7, n_threads=5, use_transformation=False, backend=backend
        )
        partition = partition_input(data, 5)
        mappings = scheme.engine.run_mappings(
            partition.chunks, lengths=partition.lengths
        )
        assert mappings.shape == (5, div7.n_states)
        for c in range(5):
            for s in range(div7.n_states):
                assert int(mappings[c, s]) == int(
                    div7.run(partition.chunk(c), start=s)
                )

    def test_backends_agree_on_mappings(self, scanner_dfa, rng):
        data = rng.integers(0, 128, size=700).astype(np.uint8)
        partition = partition_input(data, 7)
        fast = FastBackend(scanner_dfa.table)
        sim_scheme = SFAScheme.for_dfa(
            scanner_dfa, n_threads=7, use_transformation=False, backend="sim"
        )
        np.testing.assert_array_equal(
            np.asarray(
                sim_scheme.engine.run_mappings(
                    partition.chunks, lengths=partition.lengths
                )
            ),
            np.asarray(
                fast.run_mappings(partition.chunks, lengths=partition.lengths)
            ),
        )

    def test_sim_backend_charges_mapping_phase(self, div7):
        scheme = SFAScheme.for_dfa(
            div7, n_threads=4, use_transformation=False, backend="sim"
        )
        result = scheme.run(b"0110" * 100)
        assert result.stats.phase_cycles.get(KernelPhase.MAPPING, 0.0) > 0
        # 400 symbols over 4 threads dedupe to ONE unique 100-symbol chunk
        # (periodic input), and that chunk runs all n_states lanes.
        assert result.stats.transitions == 100 * div7.n_states

    def test_dedupe_caps_construction_cost(self, div7):
        periodic = SFAScheme.for_dfa(
            div7, n_threads=8, use_transformation=False, backend="sim"
        ).run(b"01" * 400)
        rng = np.random.default_rng(0)
        random_run = SFAScheme.for_dfa(
            div7, n_threads=8, use_transformation=False, backend="sim"
        ).run(bytes(rng.integers(0, 2, size=800).astype(np.uint8)))
        # The periodic input collapses to one unique chunk; its mapping
        # construction (and thus total cycles) must be far cheaper.
        assert periodic.stats.transitions < random_run.stats.transitions
        assert periodic.stats.cycles < random_run.stats.cycles


# ----------------------------------------------------------------------
# scheme contract
# ----------------------------------------------------------------------
class TestSchemeContract:
    @pytest.mark.parametrize("backend", ["sim", "fast"])
    @pytest.mark.parametrize("n_threads", [1, 3, 8, 17])
    def test_exact_answer_all_segmentations(
        self, scanner_dfa, backend, n_threads, rng
    ):
        data = rng.integers(0, 128, size=901).astype(np.uint8)
        scheme = SFAScheme.for_dfa(
            scanner_dfa,
            n_threads=n_threads,
            training_input=bytes(
                rng.integers(0, 128, size=256).astype(np.uint8)
            ),
            backend=backend,
        )
        result = scheme.run(data)
        assert result.end_state == scanner_dfa.run(data)
        assert result.chunk_ends is not None
        assert result.chunk_ends.size == n_threads

    def test_zero_recovery_rounds(self, affine, affine_io):
        train, data = affine_io
        scheme = SFAScheme.for_dfa(
            affine, n_threads=16, training_input=train, backend="sim"
        )
        result = scheme.run(data)
        assert result.stats.recovery_rounds == 0
        assert result.stats.mismatches == 0
        assert result.stats.runtime_speculation_accuracy == 1.0

    def test_carried_start_state(self, div7):
        scheme = SFAScheme.for_dfa(
            div7, n_threads=4, use_transformation=False
        )
        data = b"011010" * 50
        for start in range(div7.n_states):
            assert scheme.run(data, start_state=start).end_state == div7.run(
                data, start=start
            )

    def test_selfcheck_audits_pass(self, affine, affine_io):
        train, data = affine_io
        scheme = SFAScheme.for_dfa(
            affine, n_threads=8, training_input=train, backend="sim"
        )
        scheme.selfcheck = True
        result = scheme.run(data)  # audit raises SelfCheckError on violation
        assert result.end_state == affine.run(data)

    def test_metrics_recorded(self, div7):
        registry = MetricsRegistry()
        scheme = SFAScheme.for_dfa(
            div7, n_threads=8, use_transformation=False, metrics=registry
        )
        scheme.run(b"01" * 400)
        snap = registry.as_dict()
        assert snap["sfa.mappings_built"] >= 1
        assert snap["sfa.mappings_deduped"] >= 1


# ----------------------------------------------------------------------
# features + selection
# ----------------------------------------------------------------------
class TestSelection:
    def test_reachable_width_collapses_for_converging_fsm(self, rng):
        scanner = classic.keyword_scanner(b"needle", n_symbols=64)
        data = bytes(rng.integers(0, 64, size=2048).astype(np.uint8))
        width = reachable_width(scanner, data)
        assert width < scanner.n_states / 2

    def test_reachable_width_stays_full_for_permutation(self, affine, rng):
        data = bytes(rng.integers(0, 16, size=2048).astype(np.uint8))
        assert reachable_width(affine, data) == affine.n_states

    def test_profile_populates_reachable_width(self, affine, affine_io):
        train, _data = affine_io
        features = profile_features(affine, train)
        assert features.reachable_width == affine.n_states
        assert features.as_dict()["reachable_width"] == affine.n_states

    def test_selector_picks_sfa_and_it_wins(self, affine, affine_io):
        """The acceptance case: on a speculation-hopeless FSM the tree's
        new orange node routes to SFA, and SFA beats every speculative
        scheme's simulated wall-clock."""
        train, data = affine_io
        pal = GSpecPal(
            affine,
            GSpecPalConfig(n_threads=64, backend="sim"),
            training_input=train,
        )
        assert pal.select_scheme() == "sfa"
        sfa_cycles = pal.run(data, scheme="sfa").stats.cycles
        for rival in ("pm", "sre", "rr", "nf"):
            rival_cycles = pal.run(data, scheme=rival).stats.cycles
            assert sfa_cycles < rival_cycles, rival

    def test_selector_avoids_sfa_when_speculation_works(self, div7, rng):
        train = bytes(rng.integers(ord("0"), ord("2"), size=2048))
        pal = GSpecPal(
            div7, GSpecPalConfig(n_threads=64), training_input=train
        )
        assert pal.select_scheme() != "sfa"

    def test_estimate_costs_includes_sfa(self, affine, affine_io):
        train, data = affine_io
        pal = GSpecPal(
            affine,
            GSpecPalConfig(n_threads=64, backend="sim"),
            training_input=train,
        )
        est = pal.estimate_costs(data)
        assert "sfa" in est
        assert est["sfa"] < min(est[s] for s in ("pm", "sre", "rr", "nf"))
