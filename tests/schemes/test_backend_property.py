"""Property-based cross-backend equivalence: random DFAs × random inputs.

For every scheme, the answer-only ``fast`` backend and the cycle-accurate
``sim`` backend must produce identical end states — and both must agree
with the plain sequential oracle (``DFA.run``).  Hypothesis drives the DFA
shape, the transition table, the accepting set, the input and the thread
count; shrinking therefore hands back a minimal (table, input) witness on
failure.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.automata.dfa import DFA
from repro.schemes import (
    EnumerativeScheme,
    NFScheme,
    PMScheme,
    RRScheme,
    SequentialScheme,
    SFAScheme,
    SpecSequentialScheme,
    SREHOScheme,
    SREScheme,
)

ALL_SCHEMES = [
    SequentialScheme,
    SpecSequentialScheme,
    PMScheme,
    SREScheme,
    SREHOScheme,
    RRScheme,
    NFScheme,
    EnumerativeScheme,
    SFAScheme,
]


@st.composite
def dfa_and_input(draw):
    n_states = draw(st.integers(min_value=2, max_value=8))
    n_symbols = draw(st.integers(min_value=2, max_value=6))
    table = draw(
        st.lists(
            st.lists(
                st.integers(min_value=0, max_value=n_states - 1),
                min_size=n_symbols,
                max_size=n_symbols,
            ),
            min_size=n_states,
            max_size=n_states,
        )
    )
    accepting = draw(
        st.sets(
            st.integers(min_value=0, max_value=n_states - 1), min_size=1
        )
    )
    start = draw(st.integers(min_value=0, max_value=n_states - 1))
    n_threads = draw(st.integers(min_value=1, max_value=5))
    symbols = draw(
        st.lists(
            st.integers(min_value=0, max_value=n_symbols - 1),
            min_size=n_threads,  # the partition needs one symbol per chunk
            max_size=96,
        )
    )
    dfa = DFA(
        table=np.asarray(table, dtype=np.int64),
        start=start,
        accepting=frozenset(accepting),
        name="hyp",
    )
    return dfa, np.asarray(symbols, dtype=np.uint8), n_threads


@settings(max_examples=30, deadline=None)
@given(case=dfa_and_input())
def test_fast_equals_sim_equals_oracle(case):
    dfa, symbols, n_threads = case
    truth = dfa.run(symbols)
    training = bytes(symbols[: max(1, symbols.size // 4)])
    for cls in ALL_SCHEMES:
        results = {}
        for backend in ("sim", "fast"):
            scheme = cls.for_dfa(
                dfa,
                n_threads=n_threads,
                training_input=training,
                backend=backend,
            )
            results[backend] = scheme.run(symbols)
        label = f"{cls.__name__} (N={n_threads})"
        assert results["sim"].end_state == truth, label
        assert results["fast"].end_state == truth, label
        assert results["fast"].accepts == results["sim"].accepts == (
            truth in dfa.accepting
        ), label
        sim_ends, fast_ends = (
            results["sim"].chunk_ends,
            results["fast"].chunk_ends,
        )
        assert (sim_ends is None) == (fast_ends is None), label
        if sim_ends is not None:
            np.testing.assert_array_equal(
                np.asarray(fast_ends), np.asarray(sim_ends), err_msg=label
            )


@settings(max_examples=15, deadline=None)
@given(case=dfa_and_input())
def test_untransformed_layouts_agree_too(case):
    """The same contract with the frequency transformation off (hash
    layout): the backend split must be orthogonal to the table layout."""
    dfa, symbols, n_threads = case
    truth = dfa.run(symbols)
    for cls in (SpecSequentialScheme, RRScheme, SFAScheme):
        for backend in ("sim", "fast"):
            scheme = cls.for_dfa(
                dfa,
                n_threads=n_threads,
                use_transformation=False,
                backend=backend,
            )
            assert scheme.run(symbols).end_state == truth, (
                cls.__name__,
                backend,
            )
