"""Higher-order SRE extension tests."""

import numpy as np
import pytest

from repro.schemes import SREHOScheme, SREScheme
from repro.schemes.sre_ho import HigherOrderSREPolicy
from repro.workloads.components import counter_component
from repro.automata.dfa import DFA

from tests.schemes.test_policies import make_ctx


@pytest.fixture(scope="module")
def hard_dfa():
    comp = counter_component(10, n_symbols=64, seed=8)
    return DFA(table=comp.table, start=0, accepting=frozenset({0}))


def test_correctness(hard_dfa, rng):
    data = bytes(rng.integers(0, 64, size=1600).astype(np.uint8))
    training = bytes(rng.integers(0, 64, size=400).astype(np.uint8))
    scheme = SREHOScheme.for_dfa(hard_dfa, n_threads=16, training_input=training)
    assert scheme.run(data).end_state == hard_dfa.run(data)


def test_second_order_candidates_scheduled():
    ctx = make_ctx(frontier=3, stable=np.zeros(8, dtype=bool))
    # Predecessor of thread 5 (chunk 4) has an extra recorded end.
    ctx.vr.add(4, 77, 888, own=True)
    tasks = HigherOrderSREPolicy().schedule(ctx)
    assert (5, 5, 888) in tasks  # second-order: predecessor's alternate end
    assert (3, 3, 103) in tasks  # the must-be-done frontier recovery


def test_second_order_skips_tried_candidates():
    ctx = make_ctx(frontier=3, stable=np.zeros(8, dtype=bool))
    ctx.vr.add(4, 77, 888, own=True)
    ctx.vr.add(5, 888, 1, own=True)  # 888 already tried on chunk 5
    tasks = HigherOrderSREPolicy().schedule(ctx)
    assert (5, 5, 888) not in tasks


def test_accuracy_between_sre_and_aggressive(hard_dfa, rng):
    """Higher-order candidates lift the frontier match rate above plain
    SRE on non-converging FSMs."""
    data = bytes(rng.integers(0, 64, size=6400).astype(np.uint8))
    training = bytes(rng.integers(0, 64, size=400).astype(np.uint8))
    sre = SREScheme.for_dfa(hard_dfa, n_threads=64, training_input=training).run(data)
    ho = SREHOScheme.for_dfa(hard_dfa, n_threads=64, training_input=training).run(data)
    assert ho.end_state == sre.end_state
    assert (
        ho.stats.runtime_speculation_accuracy
        >= sre.stats.runtime_speculation_accuracy
    )


def test_keeps_thread_chunk_binding(hard_dfa):
    ctx = make_ctx(frontier=2)
    tasks = HigherOrderSREPolicy().schedule(ctx)
    assert all(t == cid for t, cid, _ in tasks)
