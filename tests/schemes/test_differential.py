"""Cross-scheme differential harness: every scheme vs. the sequential oracle.

The grid spans DFA *construction modes* (regex-compiled scanners, uniformly
random transition tables, adversarial non-converging rotators) crossed with
input *regimes* (uniform random, two-symbol skew, constant, bursty runs).
For every combination, every selectable scheme plus the sequential baselines
must reproduce the oracle's ``end_state``, ``accepts`` decision, and — when
the scheme materializes them — the per-chunk verified end states.

The whole grid is additionally swept across execution backends: the
answer-only ``fast`` backend must be bit-identical to the cycle-accurate
``sim`` backend on every functional output, while leaving the execution
side of the cycle ledger untouched.

Everything is seeded; a failure here is a real speculation/recovery bug, not
flakiness.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.automata import compile_disjunction, compile_regex
from repro.automata.dfa import DFA
from repro.framework import GSpecPal, GSpecPalConfig
from repro.speculation.chunks import partition_input
from repro.workloads import classic

SEED = 20260805
N_THREADS = 8
INPUT_LENGTH = 333  # deliberately not a multiple of N_THREADS
TRAINING_LENGTH = 128

#: Schemes under differential test: the selector's four plus both baselines.
SCHEMES = GSpecPal.SELECTABLE + ("seq", "spec-seq")

#: Execution backends the whole grid is swept across.
BACKENDS = ("sim", "fast")


# ----------------------------------------------------------------------
# DFA grid: (name, build(), alphabet size the inputs must respect)
# ----------------------------------------------------------------------
def _random_table_dfa(n_states: int, n_symbols: int, seed: int, name: str) -> DFA:
    rng = np.random.default_rng(seed)
    table = rng.integers(0, n_states, size=(n_states, n_symbols))
    accepting = frozenset(
        int(s)
        for s in rng.choice(n_states, size=max(1, n_states // 8), replace=False)
    )
    return DFA(table=table, start=0, accepting=accepting, name=name)


DFAS = [
    (
        "scanner-disjunction",
        lambda: compile_disjunction(
            ["abc", "a(b|c){2,4}d", "xy+z"], n_symbols=128, name="diff-scan"
        ),
        (97, 123),
    ),
    (
        "scanner-regex",
        lambda: compile_regex("(ab|ba)+c", n_symbols=128, name="diff-regex"),
        (97, 123),
    ),
    ("random-table-small", lambda: _random_table_dfa(9, 8, SEED + 1, "rt9"), (0, 8)),
    ("random-table-mid", lambda: _random_table_dfa(33, 16, SEED + 2, "rt33"), (0, 16)),
    ("random-table-big", lambda: _random_table_dfa(80, 24, SEED + 3, "rt80"), (0, 24)),
    ("rotator", lambda: classic.cyclic_rotator(11, n_symbols=32), (0, 32)),
    ("div7", classic.div7, (48, 50)),
]


# ----------------------------------------------------------------------
# Input grid: (name, generate(rng, lo, hi, length))
# ----------------------------------------------------------------------
def _uniform(rng, lo, hi, n):
    return rng.integers(lo, hi, size=n)


def _skewed(rng, lo, hi, n):
    """90% of symbols drawn from the two lowest codes — easy speculation."""
    pool = np.where(rng.random(n) < 0.9, rng.integers(lo, lo + 2, size=n),
                    rng.integers(lo, hi, size=n))
    return pool


def _constant(rng, lo, hi, n):
    return np.full(n, lo, dtype=np.int64)


def _bursty(rng, lo, hi, n):
    """Runs of one symbol with random lengths — adversarial boundaries."""
    out = np.empty(n, dtype=np.int64)
    i = 0
    while i < n:
        run = int(rng.integers(1, 24))
        out[i : i + run] = int(rng.integers(lo, hi))
        i += run
    return out


INPUTS = [
    ("uniform", _uniform),
    ("skewed", _skewed),
    ("constant", _constant),
    ("bursty", _bursty),
]

GRID = [
    (dfa_name, input_name)
    for dfa_name, _, _ in DFAS
    for input_name, _ in INPUTS
]


def test_grid_is_large_enough():
    """The acceptance bar: at least 20 DFA x input combinations."""
    assert len(GRID) >= 20


def _oracle_chunk_ends(dfa: DFA, symbols: np.ndarray, n_chunks: int) -> np.ndarray:
    """Sequentially walk the same partition the schemes use."""
    part = partition_input(symbols, n_chunks)
    ends = np.empty(part.n_chunks, dtype=np.int64)
    state = dfa.start
    for i in range(part.n_chunks):
        state = dfa.run(part.chunk(i), start=state)
        ends[i] = state
    return ends


@pytest.fixture(scope="module")
def dfa_cache():
    """Compile each grid DFA once for the whole module."""
    return {name: build() for name, build, _ in DFAS}


def _grid_case(dfa_name, input_name, dfa_cache):
    """Build the (dfa, symbols, training) triple for one grid cell."""
    dfa = dfa_cache[dfa_name]
    lo, hi = next(rng for name, _, rng in DFAS if name == dfa_name)
    generate = next(fn for name, fn in INPUTS if name == input_name)
    rng = np.random.default_rng(SEED ^ hash((dfa_name, input_name)) % (2**32))
    symbols = np.asarray(generate(rng, lo, hi, INPUT_LENGTH), dtype=np.uint8)
    training = np.asarray(generate(rng, lo, hi, TRAINING_LENGTH), dtype=np.uint8)
    return dfa, symbols, training


@pytest.mark.parametrize("backend", BACKENDS)
@pytest.mark.parametrize("dfa_name,input_name", GRID)
def test_all_schemes_match_oracle(dfa_name, input_name, backend, dfa_cache):
    dfa, symbols, training = _grid_case(dfa_name, input_name, dfa_cache)

    truth_end = dfa.run(symbols)
    truth_accepts = truth_end in dfa.accepting
    oracle_cache = {}  # n_chunks -> chunk ends (seq runs with 1 chunk)

    pal = GSpecPal(
        dfa,
        GSpecPalConfig(n_threads=N_THREADS, backend=backend),
        training_input=training,
    )
    for scheme in SCHEMES:
        result = pal.run(symbols, scheme=scheme)
        label = f"{scheme} on {dfa_name}/{input_name} [{backend}]"
        assert result.end_state == truth_end, f"{label}: end state"
        assert result.accepts == truth_accepts, f"{label}: accepts"
        if result.chunk_ends is not None:
            n = result.n_chunks
            if n not in oracle_cache:
                oracle_cache[n] = _oracle_chunk_ends(dfa, symbols, n)
            np.testing.assert_array_equal(
                np.asarray(result.chunk_ends),
                oracle_cache[n],
                err_msg=f"{label}: chunk_ends",
            )


@pytest.mark.parametrize("dfa_name,input_name", GRID)
def test_backends_are_bit_identical(dfa_name, input_name, dfa_cache):
    """The correctness contract of the engine layer, cell by cell:
    ``end_state``/``accepts``/``chunk_ends`` agree across backends, only
    the sim backend accounts execution work, and sim ledgers are
    unperturbed by the fast backend having run first."""
    dfa, symbols, training = _grid_case(dfa_name, input_name, dfa_cache)
    pals = {
        backend: GSpecPal(
            dfa,
            GSpecPalConfig(n_threads=N_THREADS, backend=backend),
            training_input=training,
        )
        for backend in BACKENDS
    }
    for scheme in SCHEMES:
        fast = pals["fast"].run(symbols, scheme=scheme)
        sim = pals["sim"].run(symbols, scheme=scheme)
        label = f"{scheme} on {dfa_name}/{input_name}"
        assert fast.end_state == sim.end_state, f"{label}: end state"
        assert fast.accepts == sim.accepts, f"{label}: accepts"
        assert (fast.chunk_ends is None) == (sim.chunk_ends is None), label
        if sim.chunk_ends is not None:
            np.testing.assert_array_equal(
                np.asarray(fast.chunk_ends),
                np.asarray(sim.chunk_ends),
                err_msg=f"{label}: chunk_ends",
            )
        # Only the sim backend populates the execution side of the ledger
        # (transitions and table lookups; VR-record staging is charged by
        # the schemes themselves and may still appear as shared traffic).
        assert sim.stats.transitions > 0, label
        assert fast.stats.transitions == 0, label
        assert fast.stats.global_accesses == 0, label
        assert fast.cycles < sim.cycles, label


def test_parallel_schemes_expose_chunk_ends(dfa_cache):
    """The four selectable schemes must materialize verified chunk ends
    (the differential harness would silently weaken without them)."""
    dfa = dfa_cache["scanner-disjunction"]
    rng = np.random.default_rng(SEED)
    symbols = rng.integers(97, 123, size=INPUT_LENGTH).astype(np.uint8)
    training = rng.integers(97, 123, size=TRAINING_LENGTH).astype(np.uint8)
    pal = GSpecPal(
        dfa, GSpecPalConfig(n_threads=N_THREADS), training_input=training
    )
    for scheme in GSpecPal.SELECTABLE:
        result = pal.run(symbols, scheme=scheme)
        assert result.chunk_ends is not None, scheme
        assert len(result.chunk_ends) == N_THREADS, scheme
