"""Every scheme must produce the sequential ground truth — always.

Speculation, recovery scheduling, record capacities and layouts may change
*cost*, never *answers*.  These tests sweep schemes × automata × inputs and
compare end states/accept decisions against the plain DFA run.
"""

import numpy as np
import pytest

from repro.schemes import (
    SCHEME_REGISTRY,
    EnumerativeScheme,
    NFScheme,
    PMScheme,
    RRScheme,
    SequentialScheme,
    SpecSequentialScheme,
    SREHOScheme,
    SREScheme,
)

ALL_SCHEMES = [
    SequentialScheme,
    SpecSequentialScheme,
    PMScheme,
    SREScheme,
    SREHOScheme,
    RRScheme,
    NFScheme,
    EnumerativeScheme,
]


def run_and_check(cls, dfa, data, training, n_threads=16, **kwargs):
    scheme = cls.for_dfa(dfa, n_threads=n_threads, training_input=training, **kwargs)
    result = scheme.run(data)
    truth = dfa.run(data)
    assert result.end_state == truth, f"{cls.__name__} end state mismatch"
    assert result.accepts == (truth in dfa.accepting)
    return result


@pytest.mark.parametrize("cls", ALL_SCHEMES)
class TestAllSchemes:
    def test_div7(self, cls, div7, rng):
        data = bytes(rng.integers(48, 50, size=500).astype(np.uint8))
        training = bytes(rng.integers(48, 50, size=200).astype(np.uint8))
        run_and_check(cls, div7, data, training)

    def test_scanner(self, cls, scanner_dfa, rng):
        data = bytes(rng.integers(97, 123, size=600).astype(np.uint8))
        training = bytes(rng.integers(97, 123, size=200).astype(np.uint8))
        run_and_check(cls, scanner_dfa, data, training)

    def test_rotator_worst_case(self, cls, rotator, rng):
        """Zero-convergence FSM: speculation always wrong; recovery must
        still restore correctness."""
        data = bytes(rng.integers(0, 64, size=400).astype(np.uint8))
        training = bytes(rng.integers(0, 64, size=100).astype(np.uint8))
        run_and_check(cls, rotator, data, training)

    def test_without_transformation(self, cls, div7, rng):
        data = bytes(rng.integers(48, 50, size=300).astype(np.uint8))
        training = bytes(rng.integers(48, 50, size=100).astype(np.uint8))
        scheme = cls.for_dfa(
            div7, n_threads=8, training_input=training, use_transformation=False
        )
        assert scheme.run(data).end_state == div7.run(data)

    def test_input_not_multiple_of_threads(self, cls, div7, rng):
        data = bytes(rng.integers(48, 50, size=101).astype(np.uint8))
        training = bytes(rng.integers(48, 50, size=64).astype(np.uint8))
        run_and_check(cls, div7, data, training, n_threads=8)

    def test_two_threads(self, cls, div7, rng):
        data = bytes(rng.integers(48, 50, size=60).astype(np.uint8))
        training = bytes(rng.integers(48, 50, size=30).astype(np.uint8))
        run_and_check(cls, div7, data, training, n_threads=2)


@pytest.mark.parametrize("k", [1, 2, 4, 8])
def test_pm_spec_k_levels(div7, rng, k):
    data = bytes(rng.integers(48, 50, size=400).astype(np.uint8))
    training = bytes(rng.integers(48, 50, size=100).astype(np.uint8))
    scheme = PMScheme.for_dfa(div7, n_threads=8, training_input=training, k=k)
    assert scheme.run(data).end_state == div7.run(data)


@pytest.mark.parametrize("capacity", [1, 2, 4, 16, 32])
def test_recovery_schemes_any_capacity(rotator, rng, capacity):
    """Correctness must hold for every register budget (Fig. 7 sweep)."""
    data = bytes(rng.integers(0, 64, size=300).astype(np.uint8))
    training = bytes(rng.integers(0, 64, size=100).astype(np.uint8))
    for cls in (SREScheme, RRScheme, NFScheme):
        scheme = cls.for_dfa(
            rotator,
            n_threads=8,
            training_input=training,
            own_capacity=max(1, capacity),
            others_capacity=capacity,
        )
        assert scheme.run(data).end_state == rotator.run(data), cls.__name__


def test_registry_contains_all():
    assert set(SCHEME_REGISTRY) == {
        "seq", "spec-seq", "pm", "sre", "sre-ho", "rr", "nf", "enum", "sfa",
    }


def test_get_scheme_unknown():
    from repro.schemes import get_scheme

    with pytest.raises(KeyError):
        get_scheme("bogus")


def test_scheme_result_fields(div7, rng):
    data = bytes(rng.integers(48, 50, size=160).astype(np.uint8))
    training = bytes(rng.integers(48, 50, size=80).astype(np.uint8))
    scheme = RRScheme.for_dfa(div7, n_threads=8, training_input=training)
    result = scheme.run(data)
    assert result.scheme == "rr"
    assert result.n_chunks == 8
    assert result.cycles > 0
    assert result.time_ms > 0


def test_deterministic_across_runs(scanner_dfa, rng):
    data = bytes(rng.integers(97, 123, size=400).astype(np.uint8))
    training = bytes(rng.integers(97, 123, size=150).astype(np.uint8))
    a = NFScheme.for_dfa(scanner_dfa, n_threads=8, training_input=training).run(data)
    b = NFScheme.for_dfa(scanner_dfa, n_threads=8, training_input=training).run(data)
    assert a.cycles == b.cycles
    assert a.end_state == b.end_state
