"""Unit tests for the recovery scheduling policies (Algorithms 3-5's
scheduling decisions), exercised on hand-crafted round contexts."""

import numpy as np

from repro.schemes.nf import NFPolicy
from repro.schemes.rr import RRPolicy
from repro.schemes.sre import SREPolicy
from repro.schemes.recovery_common import RoundContext
from repro.speculation.chunks import partition_input
from repro.speculation.predictor import SpeculationQueue, Prediction
from repro.speculation.records import VRStore


def make_ctx(
    n=8,
    frontier=3,
    found=None,
    stable=None,
    queue_states=(5, 6, 7, 8),
    others_capacity=16,
):
    partition = partition_input(np.arange(n * 4, dtype=np.uint8) % 16, n)
    queues = [
        SpeculationQueue(
            states=np.asarray(queue_states),
            weights=np.arange(len(queue_states), 0, -1),
        )
        for _ in range(n)
    ]
    prediction = Prediction(queues=queues)
    vr = VRStore(n_chunks=n, others_capacity=others_capacity)
    end_p = np.arange(n) + 100
    if found is None:
        found = np.zeros(n, dtype=bool)
    if stable is None:
        stable = np.ones(n, dtype=bool)
    return RoundContext(
        frontier=frontier,
        end_p=end_p,
        found=np.asarray(found),
        stable=np.asarray(stable),
        partition=partition,
        prediction=prediction,
        vr=vr,
    )


class TestSREPolicy:
    def test_frontier_always_recovers(self):
        ctx = make_ctx(stable=np.zeros(8, dtype=bool))
        tasks = SREPolicy().schedule(ctx)
        assert (3, 3, 103) in tasks  # frontier thread from its end_p

    def test_rear_threads_recover_own_chunk_when_stable(self):
        ctx = make_ctx()
        tasks = SREPolicy().schedule(ctx)
        assert all(t == cid for t, cid, _ in tasks)
        assert {t for t, _, _ in tasks} == {3, 4, 5, 6, 7}

    def test_found_threads_stay_idle(self):
        found = np.zeros(8, dtype=bool)
        found[5] = True
        ctx = make_ctx(found=found)
        tasks = SREPolicy().schedule(ctx)
        assert 5 not in {t for t, _, _ in tasks}

    def test_unstable_non_frontier_waits(self):
        stable = np.ones(8, dtype=bool)
        stable[6] = False
        ctx = make_ctx(stable=stable)
        tasks = SREPolicy().schedule(ctx)
        assert 6 not in {t for t, _, _ in tasks}

    def test_never_schedules_foreign_chunks(self):
        ctx = make_ctx(frontier=5)
        tasks = SREPolicy().schedule(ctx)
        assert all(t == cid for t, cid, _ in tasks)
        assert all(t >= 5 for t, _, _ in tasks)


class TestRRPolicy:
    def test_non_rear_round_robin_assignment(self):
        ctx = make_ctx(frontier=3)
        tasks = RRPolicy().schedule(ctx)
        non_rear = [(t, cid) for t, cid, _ in tasks if t < 3]
        # Threads 0..2 spread over chunks 4..7 round-robin.
        assert [cid for _, cid in non_rear] == [4, 5, 6]

    def test_non_rear_dequeue_front_candidates(self):
        ctx = make_ctx(frontier=3)
        tasks = RRPolicy().schedule(ctx)
        starts = {cid: st for t, cid, st in tasks if t < 3}
        assert starts == {4: 5, 5: 5, 6: 5}  # each chunk's queue front

    def test_skips_already_tried_candidates(self):
        ctx = make_ctx(frontier=3)
        ctx.vr.add(4, 5, 99, own=False)  # front candidate already executed
        tasks = RRPolicy().schedule(ctx)
        starts = {cid: st for t, cid, st in tasks if t < 3}
        assert starts[4] == 6  # dequeued past the tried one

    def test_respects_others_capacity(self):
        ctx = make_ctx(frontier=3, others_capacity=0)
        tasks = RRPolicy().schedule(ctx)
        assert all(t >= 3 for t, _, _ in tasks)  # no foreign recoveries

    def test_frontier_at_last_chunk_no_non_rear_work(self):
        ctx = make_ctx(frontier=7)
        tasks = RRPolicy().schedule(ctx)
        assert all(cid == 7 for _, cid, _ in tasks)


class TestNFPolicy:
    def test_non_rear_drain_nearest_first(self):
        ctx = make_ctx(frontier=4)
        tasks = NFPolicy().schedule(ctx)
        non_rear = [(t, cid, st) for t, cid, st in tasks if t < 4]
        # All four threads drain chunk 5's queue (4 candidates available).
        assert [cid for _, cid, _ in non_rear] == [5, 5, 5, 5]
        assert [st for _, _, st in non_rear] == [5, 6, 7, 8]

    def test_spills_to_next_chunk_when_queue_exhausted(self):
        ctx = make_ctx(frontier=4, queue_states=(5, 6))
        tasks = NFPolicy().schedule(ctx)
        non_rear = [(cid, st) for t, cid, st in tasks if t < 4]
        assert non_rear == [(5, 5), (5, 6), (6, 5), (6, 6)]

    def test_capacity_aware_moves_on(self):
        ctx = make_ctx(frontier=4, others_capacity=1)
        tasks = NFPolicy().schedule(ctx)
        non_rear = [cid for t, cid, _ in tasks if t < 4]
        # One foreign record per chunk: threads fan out instead of stacking.
        assert non_rear == [5, 6, 7]

    def test_all_queues_exhausted_threads_idle(self):
        ctx = make_ctx(frontier=4, queue_states=())
        tasks = NFPolicy().schedule(ctx)
        assert all(t >= 4 for t, _, _ in tasks)

    def test_rear_behaviour_matches_sre(self):
        ctx = make_ctx(frontier=4)
        sre_rear = {x for x in SREPolicy().schedule(make_ctx(frontier=4))}
        nf_rear = {x for x in NFPolicy().schedule(ctx) if x[0] >= 4}
        assert sre_rear == nf_rear
