"""Behavioural tests: the *cost-model* properties that make each scheme what
it is (thread activity, recovery rounds, redundancy, phase structure)."""

import numpy as np
import pytest

from repro.schemes import (
    EnumerativeScheme,
    NFScheme,
    PMScheme,
    RRScheme,
    SequentialScheme,
    SpecSequentialScheme,
    SREScheme,
)
from repro.automata.dfa import DFA
from repro.workloads import classic


def _random_counter_dfa(r: int, n_symbols: int, seed: int) -> DFA:
    """A permutation counter with random per-symbol weights: never converges
    and its boundary states are genuinely input-dependent."""
    from repro.workloads.components import counter_component

    comp = counter_component(r, n_symbols=n_symbols, seed=seed)
    return DFA(table=comp.table, start=0, accepting=frozenset({0}), name=f"ctr{r}")


@pytest.fixture(scope="module")
def hard_case(scanner_dfa=None):
    """A non-converging FSM and stream: recovery is mandatory everywhere."""
    rot = classic.cyclic_rotator(6, n_symbols=64)
    rng = np.random.default_rng(7)
    data = bytes(rng.integers(0, 64, size=800).astype(np.uint8))
    training = bytes(rng.integers(0, 64, size=200).astype(np.uint8))
    return rot, data, training


@pytest.fixture(scope="module")
def easy_case():
    """A fast-converging scanner: speculation is nearly always right."""
    d = classic.keyword_scanner(b"needle")
    rng = np.random.default_rng(8)
    data = bytes(rng.integers(97, 123, size=800).astype(np.uint8))
    training = bytes(rng.integers(97, 123, size=200).astype(np.uint8))
    return d, data, training


def run(cls, case, n_threads=16, **kw):
    dfa, data, training = case
    # Cost-model behaviour is what these tests pin down, so they always use
    # the cycle-accounting backend regardless of REPRO_BACKEND.
    kw.setdefault("backend", "sim")
    return cls.for_dfa(dfa, n_threads=n_threads, training_input=training, **kw).run(data)


class TestSequentialBaseline:
    def test_sequential_has_no_recovery(self, easy_case):
        r = run(SequentialScheme, easy_case)
        assert r.stats.recovery_rounds == 0
        assert r.stats.transitions == 800

    def test_parallel_faster_than_sequential_easy(self, easy_case):
        seq = run(SequentialScheme, easy_case)
        sre = run(SREScheme, easy_case)
        assert sre.cycles < seq.cycles


class TestSpecSeq:
    def test_hard_case_recovers_most_chunks(self, hard_case):
        r = run(SpecSequentialScheme, hard_case)
        # Rotation FSM: speculation is mostly wrong (ties can luck out when
        # every chunk applies the same shift); recovery is one-thread-deep.
        assert r.stats.recovery_rounds >= 8
        assert r.stats.avg_active_threads == 1.0

    def test_easy_case_rarely_recovers(self, easy_case):
        r = run(SpecSequentialScheme, easy_case)
        assert r.stats.runtime_speculation_accuracy > 0.9


class TestPM:
    def test_spec_k_transitions_scale(self, easy_case):
        r1 = run(PMScheme, easy_case, k=1)
        r4 = run(PMScheme, easy_case, k=4)
        # spec-k executes ~k paths; the keyword scanner's queue usually has
        # few candidates so growth is sub-linear but strictly positive.
        assert r4.stats.transitions > r1.stats.transitions

    def test_redundant_work_counted(self, hard_case):
        r = run(PMScheme, hard_case, k=4)
        assert r.stats.redundant_transitions > 0

    def test_sequential_recovery_one_thread(self, hard_case):
        r = run(PMScheme, hard_case)
        assert r.stats.recovery_rounds > 0
        assert r.stats.avg_active_threads == 1.0


class TestSRE:
    def test_frontier_rounds_bounded_by_chunks(self, hard_case):
        r = run(SREScheme, hard_case)
        assert r.stats.recovery_rounds <= 16

    def test_easy_case_high_accuracy(self, easy_case):
        r = run(SREScheme, easy_case)
        assert r.stats.runtime_speculation_accuracy > 0.9


class TestAggressive:
    def test_rr_activates_more_threads_than_sre(self, hard_case):
        sre = run(SREScheme, hard_case)
        rr = run(RRScheme, hard_case)
        assert rr.stats.avg_active_threads >= sre.stats.avg_active_threads

    def test_nf_activates_at_least_rr(self, hard_case):
        rr = run(RRScheme, hard_case)
        nf = run(NFScheme, hard_case)
        assert nf.stats.avg_active_threads >= 0.5 * rr.stats.avg_active_threads

    def test_aggressive_boost_accuracy_on_random_counter(self):
        """Truth is always within the counter's queue: enumeration by idle
        threads must lift the frontier match rate far above SRE's."""
        dfa = _random_counter_dfa(r=8, n_symbols=64, seed=5)
        rng = np.random.default_rng(9)
        data = bytes(rng.integers(0, 64, size=3200).astype(np.uint8))
        training = bytes(rng.integers(0, 64, size=400).astype(np.uint8))
        case = (dfa, data, training)
        sre = run(SREScheme, case, n_threads=64)
        rr = run(RRScheme, case, n_threads=64)
        assert rr.stats.runtime_speculation_accuracy \
            > sre.stats.runtime_speculation_accuracy + 0.2

    def test_rr_beats_pm_on_hard_fsm(self):
        dfa = _random_counter_dfa(r=10, n_symbols=64, seed=6)
        rng = np.random.default_rng(10)
        data = bytes(rng.integers(0, 64, size=6400).astype(np.uint8))
        training = bytes(rng.integers(0, 64, size=400).astype(np.uint8))
        case = (dfa, data, training)
        pm = run(PMScheme, case, n_threads=64)
        rr = run(RRScheme, case, n_threads=64)
        nf = run(NFScheme, case, n_threads=64)
        assert rr.cycles < pm.cycles
        assert nf.cycles < pm.cycles

    def test_pm_does_no_recovery_on_easy_fsm(self, easy_case):
        """When speculation covers the truth, PM's delayed recovery never
        has to fire (Fig. 8's Snort1-2 shape)."""
        pm = run(PMScheme, easy_case)
        assert pm.stats.recovery_rounds == 0
        assert pm.stats.runtime_speculation_accuracy == 1.0


class TestEnumerative:
    def test_redundancy_is_state_count_minus_one(self, hard_case):
        dfa, data, training = hard_case
        r = run(EnumerativeScheme, hard_case)
        assert r.stats.redundant_transitions == (dfa.n_states - 1) * len(data)

    def test_no_recovery_ever(self, hard_case):
        r = run(EnumerativeScheme, hard_case)
        assert r.stats.recovery_rounds == 0


class TestPhaseStructure:
    def test_phases_present(self, hard_case):
        r = run(RRScheme, hard_case)
        for phase in ("launch", "predict", "speculative_execution", "verify_recover"):
            assert phase in r.stats.phase_cycles, phase

    def test_phase_cycles_sum_to_total(self, hard_case):
        r = run(NFScheme, hard_case)
        assert sum(r.stats.phase_cycles.values()) == pytest.approx(r.cycles)
