"""Adaptive spec-k extension tests (per-chunk path count)."""

import numpy as np
import pytest

from repro.schemes import PMScheme
from repro.workloads import classic
from repro.workloads.components import counter_component
from repro.automata.dfa import DFA
from repro.errors import SchemeError


@pytest.fixture(scope="module")
def easy_case():
    d = classic.keyword_scanner(b"token")
    rng = np.random.default_rng(1)
    data = bytes(rng.integers(97, 123, size=1600).astype(np.uint8))
    training = bytes(rng.integers(97, 123, size=400).astype(np.uint8))
    return d, data, training


@pytest.fixture(scope="module")
def hard_case():
    comp = counter_component(10, n_symbols=64, seed=4)
    d = DFA(table=comp.table, start=0, accepting=frozenset({0}))
    rng = np.random.default_rng(2)
    data = bytes(rng.integers(0, 64, size=1600).astype(np.uint8))
    training = bytes(rng.integers(0, 64, size=400).astype(np.uint8))
    return d, data, training


def run(case, **kw):
    dfa, data, training = case
    scheme = PMScheme.for_dfa(dfa, n_threads=16, training_input=training, **kw)
    result = scheme.run(data)
    assert result.end_state == dfa.run(data)
    return result


def test_adaptive_correct_on_both_cases(easy_case, hard_case):
    run(easy_case, k=4, adaptive=True)
    run(hard_case, k=4, adaptive=True)


def test_adaptive_cheaper_on_easy_fsm(easy_case):
    """Concentrated queues -> adaptive drops to ~1 path per chunk."""
    static = run(easy_case, k=4)
    adaptive = run(easy_case, k=4, adaptive=True)
    assert adaptive.stats.transitions <= static.stats.transitions


def test_adaptive_keeps_paths_on_hard_fsm(hard_case):
    """Uniform queues -> adaptive retains the full k coverage."""
    static = run(hard_case, k=4)
    adaptive = run(hard_case, k=4, adaptive=True)
    # Same speculative coverage: no accuracy regression.
    assert (
        adaptive.stats.runtime_speculation_accuracy
        >= static.stats.runtime_speculation_accuracy - 1e-9
    )


def test_adaptive_name():
    from repro.workloads import classic

    d = classic.parity()
    scheme = PMScheme.for_dfa(d, n_threads=4, training_input=b"1100", adaptive=True)
    assert scheme.name == "pm-adaptive4"


def test_adaptive_mass_validation():
    d = classic.parity()
    with pytest.raises(SchemeError):
        PMScheme.for_dfa(d, n_threads=4, training_input=b"11", adaptive_mass=0.0)
