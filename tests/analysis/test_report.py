"""Report-generator tests."""

from pathlib import Path

import pytest

from repro.analysis.report import EXPERIMENTS, build_report
from repro.analysis.tables import render_bars


def test_report_with_results(tmp_path):
    (tmp_path / "fig8_overall.txt").write_text("fake fig8 table")
    report = build_report(results_dir=tmp_path)
    assert "fake fig8 table" in report
    assert "Fig. 8" in report
    assert "Missing results" in report  # the others are absent


def test_report_all_missing(tmp_path):
    report = build_report(results_dir=tmp_path)
    assert report.count("no results yet") == len(EXPERIMENTS)


def test_every_experiment_has_reference():
    for title, (stem, reference) in EXPERIMENTS.items():
        assert stem and reference, title


def test_experiment_stems_match_benches():
    """Every registered experiment must have a bench that can emit it."""
    bench_dir = Path(__file__).parents[2] / "benchmarks"
    source = "\n".join(p.read_text() for p in bench_dir.glob("bench_*.py"))
    for title, (stem, _) in EXPERIMENTS.items():
        assert f'emit("{stem}"' in source, f"no bench emits {stem!r} ({title})"


def test_render_bars():
    out = render_bars(["pm", "nf"], [1.0, 2.0], width=10, title="t")
    lines = out.splitlines()
    assert lines[0] == "t"
    assert lines[1].startswith("pm | #####")
    assert lines[2].startswith("nf | ##########")


def test_render_bars_validation():
    with pytest.raises(ValueError):
        render_bars(["a"], [1.0, 2.0])
    assert render_bars([], [], title="empty") == "empty"
