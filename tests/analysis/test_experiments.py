"""Experiment-runner tests on a miniature synthetic member."""

import numpy as np
import pytest

from repro.analysis.experiments import (
    run_member,
    summarize_speedups,
    verify_against_sequential,
)
from repro.automata.dfa import DFA
from repro.workloads.components import counter_component
from repro.workloads.suites import SuiteMember
from repro.workloads.traces import TraceSpec


@pytest.fixture(scope="module")
def mini_member():
    comp = counter_component(6, n_symbols=64, seed=2)
    dfa = DFA(table=comp.table, start=0, accepting=frozenset({0}), name="mini")
    trace = TraceSpec(weights=np.concatenate([np.ones(64), np.zeros(192)]))
    return SuiteMember(suite="snort", index=1, regime="rr", dfa=dfa, trace=trace)


@pytest.fixture(scope="module")
def mini_run(mini_member):
    return run_member(
        mini_member, input_length=2048, training_length=512, n_threads=16
    )


def test_run_member_results(mini_run):
    assert set(mini_run.results) >= {"pm", "sre", "rr", "nf"}
    assert mini_run.selected in ("pm", "sre", "rr", "nf", "sfa")
    assert mini_run.features.n_states == 6


def test_all_schemes_agree_with_sequential(mini_run, mini_member):
    data = mini_member.generate_input(2048, seed=0)
    assert verify_against_sequential(mini_run, data)


def test_speedup_over_baseline(mini_run):
    speedups = mini_run.speedup_over("pm")
    assert speedups["pm"] == pytest.approx(1.0)
    assert all(v > 0 for v in speedups.values())


def test_best_scheme_minimizes_cycles(mini_run):
    best = mini_run.best_scheme
    assert all(
        mini_run.results[best].cycles <= r.cycles for r in mini_run.results.values()
    )


def test_summarize_speedups(mini_run):
    summary = summarize_speedups([mini_run], baseline="pm")
    assert set(summary) >= {"pm", "sre", "rr", "nf"}
    for entries in summary.values():
        assert entries[0][0] == "snort1"


def test_requested_scheme_subset(mini_member):
    run = run_member(
        mini_member,
        schemes=("sre", "nf"),
        input_length=1024,
        training_length=256,
        n_threads=8,
    )
    assert set(run.results) >= {"sre", "nf"}
    # The selector's pick is always present, even if not requested.
    assert run.selected in run.results
