"""Reporting-layer tests."""

import pytest

from repro.analysis.tables import format_cell, geometric_mean, render_series, render_table


def test_format_cell():
    assert format_cell(1.23456) == "1.23"
    assert format_cell(1.2, precision=3) == "1.200"
    assert format_cell(7) == "7"
    assert format_cell("x") == "x"
    assert format_cell(True) == "yes"


def test_render_table_alignment():
    out = render_table(["name", "v"], [["a", 1.5], ["long-name", 22.0]])
    lines = out.splitlines()
    assert len(lines) == 4
    assert lines[0].startswith("name")
    widths = {len(line) for line in lines}
    assert len(widths) == 1  # all rows padded to equal width


def test_render_table_title():
    out = render_table(["a"], [[1]], title="Table II")
    assert out.splitlines()[0] == "Table II"


def test_render_table_bad_row():
    with pytest.raises(ValueError):
        render_table(["a", "b"], [[1]])


def test_render_series():
    assert render_series("rr", [1.0, 2.5]) == "rr: [1.00, 2.50]"


def test_geometric_mean():
    assert geometric_mean([2.0, 8.0]) == pytest.approx(4.0)
    assert geometric_mean([]) == 0.0
    assert geometric_mean([0.0, 4.0]) == pytest.approx(4.0)  # non-positive dropped
