"""Tests for the Fig. 1-style DFA presentation helpers."""

import pytest

from repro.workloads import classic


@pytest.fixture(scope="module")
def div7():
    return classic.div7()


class TestFormatTable:
    def test_binary_columns(self, div7):
        out = div7.format_table(symbols=[ord("0"), ord("1")])
        lines = out.splitlines()
        assert lines[0].startswith("state")
        assert "0" in lines[0] and "1" in lines[0]
        assert len(lines) == 2 + 7  # header + rule + 7 states

    def test_start_marker_and_accepting_star(self, div7):
        out = div7.format_table(symbols=[ord("0")])
        assert "->s0*" in out  # s0 is both start and accepting in div7

    def test_transition_values(self, div7):
        out = div7.format_table(symbols=[ord("0"), ord("1")])
        row_s1 = [ln for ln in out.splitlines() if "s1" in ln.split("|")[0]][0]
        # s1 --0--> s2, s1 --1--> s3 (value-mod-7 doubling).
        assert "s2" in row_s1 and "s3" in row_s1

    def test_nonprintable_symbols_escaped(self):
        d = classic.parity(n_symbols=4, tracked_symbol=1)
        out = d.format_table(symbols=[0, 1])
        assert "\\x00" in out


class TestToDot:
    def test_structure(self, div7):
        dot = div7.to_dot(symbols=[ord("0"), ord("1")])
        assert dot.startswith("digraph dfa {")
        assert dot.rstrip().endswith("}")
        assert "doublecircle" in dot  # accepting state styling
        assert "__start -> s0;" in dot

    def test_edges_merged(self):
        d = classic.parity(n_symbols=4, tracked_symbol=1)
        dot = d.to_dot()
        # s0 self-loops on symbols 0,2,3: one merged edge, not three.
        self_loops = [ln for ln in dot.splitlines() if "s0 -> s0" in ln]
        assert len(self_loops) == 1

    def test_all_states_present(self, div7):
        dot = div7.to_dot(symbols=[ord("0")])
        for q in range(7):
            assert f"s{q} [shape=" in dot
