"""Property suite for the canonical-form layer.

Hypothesis-driven checks that the vectorized minimizer is a *canonical*
form: byte-level idempotent, invariant under state relabelling and
redundant-state inflation, differential against the reference Hopcroft
worklist implementation, and that :func:`are_equivalent` agrees with a
brute-force run-both-automata-on-random-strings oracle.
"""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.automata.dfa import DFA
from repro.automata.minimize import (
    _minimize_reference,
    canonical_fingerprint,
    canonical_form,
    minimize_dfa,
)
from repro.automata.properties import are_equivalent

N_SYMBOLS = 5


@st.composite
def random_dfa(draw):
    n = draw(st.integers(min_value=1, max_value=24))
    seed = draw(st.integers(min_value=0, max_value=2**31 - 1))
    rng = np.random.default_rng(seed)
    table = rng.integers(0, n, size=(n, N_SYMBOLS)).astype(np.int32)
    n_acc = draw(st.integers(min_value=0, max_value=n))
    accepting = frozenset(rng.choice(n, size=n_acc, replace=False).tolist())
    return DFA(table=table, start=0, accepting=accepting)


def _tables_identical(a: DFA, b: DFA) -> bool:
    return (
        a.n_states == b.n_states
        and a.start == b.start
        and a.accepting == b.accepting
        and np.array_equal(np.asarray(a.table), np.asarray(b.table))
    )


def _inflate(dfa: DFA, rng: np.random.Generator) -> DFA:
    """Language-preserving duplicate-state inflation (see serving.stress)."""
    n, k = dfa.n_states, dfa.n_symbols
    s = int(rng.integers(0, n))
    table = np.vstack([np.asarray(dfa.table), dfa.table[s : s + 1]])
    body = table[:n]
    reroute = (body == s) & (rng.random((n, k)) < 0.5)
    body[reroute] = n
    accepting = set(dfa.accepting)
    if s in accepting:
        accepting.add(n)
    return DFA(table=table, start=dfa.start, accepting=frozenset(accepting))


@settings(max_examples=80, deadline=None)
@given(random_dfa())
def test_minimize_is_idempotent(dfa):
    """minimize(minimize(d)) is *byte-identical* to minimize(d)."""
    once = minimize_dfa(dfa)
    twice = minimize_dfa(once)
    assert _tables_identical(once, twice)
    assert once.fingerprint() == twice.fingerprint()


@settings(max_examples=80, deadline=None)
@given(random_dfa(), st.integers(min_value=0, max_value=2**31 - 1))
def test_canonical_form_invariant_under_relabelling(dfa, seed):
    """Any state permutation canonicalizes to bit-identical tables."""
    rng = np.random.default_rng(seed)
    perm = rng.permutation(dfa.n_states)
    relabelled = dfa.renumbered(perm)
    a, b = canonical_form(dfa), canonical_form(relabelled)
    assert _tables_identical(a, b)
    assert canonical_fingerprint(dfa) == canonical_fingerprint(relabelled)


@settings(max_examples=60, deadline=None)
@given(random_dfa(), st.integers(min_value=0, max_value=2**31 - 1))
def test_canonical_form_invariant_under_inflation(dfa, seed):
    """Duplicating a state (same language, more states, different content
    fingerprint) leaves the canonical table bit-identical."""
    rng = np.random.default_rng(seed)
    inflated = _inflate(dfa, rng)
    assert _tables_identical(canonical_form(dfa), canonical_form(inflated))
    assert canonical_fingerprint(dfa) == canonical_fingerprint(inflated)


@settings(max_examples=80, deadline=None)
@given(random_dfa())
def test_vectorized_agrees_with_reference(dfa):
    """Differential: the vectorized minimizer and the reference Hopcroft
    worklist must agree on state count and language."""
    fast = minimize_dfa(dfa)
    ref = _minimize_reference(dfa)
    assert fast.n_states == ref.n_states
    assert are_equivalent(fast, ref)
    assert are_equivalent(fast, dfa)


@settings(max_examples=60, deadline=None)
@given(random_dfa(), random_dfa(), st.integers(min_value=0, max_value=2**31 - 1))
def test_are_equivalent_agrees_with_string_oracle(a, b, seed):
    """are_equivalent vs. brute force: run both automata on random strings.

    If the product construction says "equivalent", every sampled string
    must agree; if it says "different", sampling may still miss a witness,
    so only the forward implication is asserted for random pairs."""
    rng = np.random.default_rng(seed)
    verdict = are_equivalent(a, b)
    disagreed = False
    for _ in range(40):
        s = rng.integers(0, N_SYMBOLS, size=int(rng.integers(0, 16)))
        s = s.astype(np.uint8)
        if a.accepts(s) != b.accepts(s):
            disagreed = True
            break
    if verdict:
        assert not disagreed
    if disagreed:
        assert not verdict


@settings(max_examples=40, deadline=None)
@given(random_dfa(), st.integers(min_value=0, max_value=2**31 - 1))
def test_are_equivalent_true_on_disguised_copies(dfa, seed):
    """Positive oracle: a relabelled + inflated copy is always judged
    equivalent, and a flipped-acceptance copy never is."""
    rng = np.random.default_rng(seed)
    disguised = _inflate(dfa.renumbered(rng.permutation(dfa.n_states)), rng)
    assert are_equivalent(dfa, disguised)
    flipped = DFA(
        table=np.asarray(dfa.table).copy(),
        start=dfa.start,
        accepting=frozenset(set(range(dfa.n_states)) - set(dfa.accepting)),
    )
    assert not are_equivalent(dfa, flipped)


def test_equivalence_rejects_alphabet_mismatch():
    one = DFA(table=np.zeros((1, 2), dtype=np.int32), start=0, accepting={0})
    two = DFA(table=np.zeros((1, 3), dtype=np.int32), start=0, accepting={0})
    assert not are_equivalent(one, two)
