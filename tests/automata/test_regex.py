"""Regex compiler tests: parser, Thompson construction, and differential
checks against Python's ``re`` module."""

import re

import numpy as np
import pytest

from repro.automata.regex import (
    Alternate,
    Concat,
    Literal,
    Repeat,
    compile_disjunction,
    compile_regex,
    parse_regex,
    regex_to_nfa,
)
from repro.errors import RegexSyntaxError


class TestParser:
    def test_literal(self):
        node = parse_regex("a")
        assert isinstance(node, Literal)
        assert node.symbols == frozenset({ord("a")})

    def test_concat(self):
        node = parse_regex("ab")
        assert isinstance(node, Concat)
        assert len(node.parts) == 2

    def test_alternation(self):
        node = parse_regex("a|b|c")
        assert isinstance(node, Alternate)
        assert len(node.options) == 3

    def test_star_plus_question(self):
        for pat, lo, hi in [("a*", 0, None), ("a+", 1, None), ("a?", 0, 1)]:
            node = parse_regex(pat)
            assert isinstance(node, Repeat)
            assert (node.min, node.max) == (lo, hi)

    def test_bounds(self):
        node = parse_regex("a{2,5}")
        assert (node.min, node.max) == (2, 5)
        node = parse_regex("a{3}")
        assert (node.min, node.max) == (3, 3)
        node = parse_regex("a{2,}")
        assert (node.min, node.max) == (2, None)

    def test_char_class_range(self):
        node = parse_regex("[a-c]")
        assert node.symbols == frozenset({97, 98, 99})

    def test_negated_class(self):
        node = parse_regex("[^a]", n_symbols=128)
        assert ord("a") not in node.symbols
        assert len(node.symbols) == 127

    def test_class_with_literal_dash(self):
        node = parse_regex("[a-]")
        assert node.symbols == frozenset({ord("a"), ord("-")})

    def test_dot(self):
        node = parse_regex(".", n_symbols=16)
        assert len(node.symbols) == 16

    def test_escapes(self):
        assert parse_regex(r"\d").symbols == frozenset(range(48, 58))
        assert parse_regex(r"\n").symbols == frozenset({10})
        assert parse_regex(r"\x41").symbols == frozenset({0x41})
        assert parse_regex(r"\.").symbols == frozenset({ord(".")})

    def test_negated_escape_class(self):
        node = parse_regex(r"\D", n_symbols=64)
        assert frozenset(range(48, 58)) & node.symbols == frozenset()

    @pytest.mark.parametrize(
        "bad",
        ["(", ")", "*a", "a{", "a{2,1}", "[", "a{x}", "[z-a]"],
    )
    def test_syntax_errors(self, bad):
        with pytest.raises(RegexSyntaxError):
            parse_regex(bad)

    def test_error_reports_position(self):
        with pytest.raises(RegexSyntaxError) as exc:
            parse_regex("ab*{2}(")
        assert "position" in str(exc.value)

    def test_symbol_out_of_alphabet(self):
        with pytest.raises(RegexSyntaxError):
            parse_regex("a", n_symbols=32)


class TestNFA:
    def test_whole_match_semantics(self):
        nfa = regex_to_nfa("ab|cd", n_symbols=128)
        assert nfa.accepts(b"ab")
        assert nfa.accepts(b"cd")
        assert not nfa.accepts(b"abcd")
        assert not nfa.accepts(b"a")

    def test_empty_pattern_matches_empty(self):
        nfa = regex_to_nfa("a?", n_symbols=128)
        assert nfa.accepts(b"")
        assert nfa.accepts(b"a")

    def test_kleene(self):
        nfa = regex_to_nfa("(ab)*", n_symbols=128)
        assert nfa.accepts(b"")
        assert nfa.accepts(b"abab")
        assert not nfa.accepts(b"aba")


@pytest.mark.parametrize(
    "pattern",
    [
        "abc",
        "a(b|c)*d",
        "ab{2,4}c",
        "x|yz+",
        "[a-c]{2}d",
        "a.{0,3}b",
        "(ab|ba)+",
        "a[^b]c",
        "colou?r",
        "(a|b)(c|d)(e|f)",
    ],
)
def test_differential_against_re(pattern, rng):
    """Compiled DFA must agree with re.search on random streams."""
    dfa = compile_regex(pattern, n_symbols=128)
    compiled = re.compile(pattern.encode())
    for _ in range(150):
        length = int(rng.integers(0, 30))
        s = bytes(rng.integers(97, 123, size=length).astype(np.uint8))
        assert dfa.accepts(s) == bool(compiled.search(s)), (pattern, s)


def test_anchored_compile_matches_fullmatch(rng):
    dfa = compile_regex("a(b|c)+", n_symbols=128, unanchored=False, sticky_accept=False)
    compiled = re.compile(b"a(b|c)+")
    for _ in range(200):
        s = bytes(rng.integers(97, 100, size=int(rng.integers(0, 8))).astype(np.uint8))
        assert dfa.accepts(s) == bool(compiled.fullmatch(s)), s


def test_disjunction_matches_union_of_patterns(rng):
    patterns = ["abc", "a{2,3}b", "q[rs]t"]
    dfa = compile_disjunction(patterns, n_symbols=128)
    singles = [compile_regex(p, n_symbols=128) for p in patterns]
    for _ in range(150):
        s = bytes(rng.integers(97, 123, size=int(rng.integers(0, 25))).astype(np.uint8))
        assert dfa.accepts(s) == any(d.accepts(s) for d in singles), s


def test_disjunction_requires_patterns():
    with pytest.raises(RegexSyntaxError):
        compile_disjunction([])


def test_sticky_accept_is_absorbing(rng):
    dfa = compile_regex("abc", n_symbols=128)
    prefix = b"zzabc"
    state = dfa.run(prefix)
    assert state in dfa.accepting
    suffix = bytes(rng.integers(97, 123, size=50).astype(np.uint8))
    assert dfa.run(suffix, start=state) in dfa.accepting
