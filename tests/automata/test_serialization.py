"""DFA save/load round-trip tests."""

import numpy as np
import pytest

from repro.automata.serialization import load_dfa, save_dfa
from repro.errors import AutomatonError


def test_roundtrip(tmp_path, div7):
    path = tmp_path / "div7.npz"
    save_dfa(div7, path)
    loaded = load_dfa(path)
    assert loaded == div7
    assert loaded.name == div7.name


def test_roundtrip_preserves_semantics(tmp_path, scanner_dfa, rng):
    path = tmp_path / "scanner.npz"
    save_dfa(scanner_dfa, path)
    loaded = load_dfa(path)
    for _ in range(50):
        s = bytes(rng.integers(97, 123, size=int(rng.integers(0, 20))).astype(np.uint8))
        assert loaded.accepts(s) == scanner_dfa.accepts(s)


def test_missing_file(tmp_path):
    with pytest.raises(AutomatonError):
        load_dfa(tmp_path / "nope.npz")


def test_accepts_path_without_suffix(tmp_path, div7):
    # np.savez appends .npz; loading via the original stem must work.
    path = tmp_path / "plain"
    save_dfa(div7, path)
    loaded = load_dfa(path)
    assert loaded == div7
