"""Unit tests for the dense-table DFA core."""

import numpy as np
import pytest

from repro.automata.dfa import DFA, run_lockstep
from repro.errors import AutomatonError
from repro.workloads import classic


class TestConstruction:
    def test_valid_dfa(self, div7):
        assert div7.n_states == 7
        assert div7.n_symbols == 256
        assert div7.start == 0
        assert div7.accepting == frozenset({0})

    def test_rejects_empty_table(self):
        with pytest.raises(AutomatonError):
            DFA(table=np.zeros((0, 4), dtype=np.int32), start=0)

    def test_rejects_bad_start(self):
        with pytest.raises(AutomatonError):
            DFA(table=np.zeros((2, 3), dtype=np.int32), start=5)

    def test_rejects_out_of_range_transition(self):
        table = np.zeros((2, 2), dtype=np.int32)
        table[0, 1] = 9
        with pytest.raises(AutomatonError):
            DFA(table=table, start=0)

    def test_rejects_out_of_range_accepting(self):
        with pytest.raises(AutomatonError):
            DFA(table=np.zeros((2, 2), dtype=np.int32), start=0, accepting={7})

    def test_rejects_1d_table(self):
        with pytest.raises(AutomatonError):
            DFA(table=np.zeros(4, dtype=np.int32), start=0)

    def test_table_is_contiguous_int32(self, div7):
        assert div7.table.flags["C_CONTIGUOUS"]
        assert div7.table.dtype == np.int32


class TestSemantics:
    def test_div7_accepts_multiples(self, div7):
        for n in [0, 7, 14, 49, 700, 861]:
            assert div7.accepts(bin(n)[2:].encode()), n

    def test_div7_rejects_non_multiples(self, div7):
        for n in [1, 6, 8, 50, 699]:
            assert not div7.accepts(bin(n)[2:].encode()), n

    def test_empty_input_stays_at_start(self, div7):
        assert div7.run(b"") == div7.start

    def test_run_from_explicit_start(self, div7):
        # 7*2+1 = 15 ≡ 1 (mod 7): from state 0, '1' then '1' gives 3.
        assert div7.run(b"1", start=1) == 3

    def test_run_path_shape_and_endpoints(self, div7):
        data = b"101101"
        path = div7.run_path(data)
        assert path.shape == (len(data) + 1,)
        assert path[0] == div7.start
        assert path[-1] == div7.run(data)

    def test_step_matches_table(self, div7):
        for q in range(7):
            assert div7.step(q, ord("1")) == div7.table[q, ord("1")]

    def test_accepts_list_input(self, div7):
        assert div7.run([ord("1"), ord("1"), ord("1")]) == div7.run(b"111")


class TestVectorized:
    def test_run_many_matches_scalar(self, div7, rng):
        data = bytes(rng.integers(48, 50, size=100).astype(np.uint8))
        ends = div7.run_many(data, range(7))
        for q in range(7):
            assert ends[q] == div7.run(data, start=q)

    def test_run_all_states_shape(self, div7):
        ends = div7.run_all_states(b"10")
        assert ends.shape == (7,)

    def test_step_vector(self, div7):
        states = np.arange(7)
        out = div7.step_vector(states, ord("0"))
        assert np.array_equal(out, div7.table[states, ord("0")])

    def test_run_lockstep_matches_scalar(self, div7, rng):
        chunks = rng.integers(48, 50, size=(5, 40)).astype(np.uint8)
        starts = rng.integers(0, 7, size=5)
        ends = run_lockstep(div7.table, chunks, starts)
        for t in range(5):
            assert ends[t] == div7.run(chunks[t], start=int(starts[t]))

    def test_run_lockstep_respects_lengths(self, div7, rng):
        chunks = rng.integers(48, 50, size=(3, 40)).astype(np.uint8)
        starts = np.zeros(3, dtype=np.int64)
        lengths = np.array([0, 10, 40])
        ends = run_lockstep(div7.table, chunks, starts, lengths=lengths)
        assert ends[0] == div7.start
        assert ends[1] == div7.run(chunks[1, :10])
        assert ends[2] == div7.run(chunks[2])


class TestRenumbering:
    def test_renumbered_is_isomorphic(self, div7, rng):
        perm = rng.permutation(7)
        other = div7.renumbered(perm)
        data = bytes(rng.integers(48, 50, size=200).astype(np.uint8))
        assert other.accepts(data) == div7.accepts(data)
        assert perm[div7.run(data)] == other.run(data)

    def test_identity_permutation_roundtrip(self, div7):
        same = div7.renumbered(np.arange(7))
        assert same == div7

    def test_rejects_non_bijection(self, div7):
        with pytest.raises(AutomatonError):
            div7.renumbered(np.zeros(7, dtype=np.int64))

    def test_rejects_wrong_length(self, div7):
        with pytest.raises(AutomatonError):
            div7.renumbered(np.arange(5))


class TestEquality:
    def test_equal_dfas(self, div7):
        clone = DFA(
            table=div7.table.copy(),
            start=div7.start,
            accepting=div7.accepting,
            name="other-name",
        )
        assert clone == div7  # name is not part of identity
        assert hash(clone) == hash(div7)

    def test_unequal_accepting(self, div7):
        other = DFA(table=div7.table.copy(), start=0, accepting={1})
        assert other != div7

    def test_accepting_mask(self, div7):
        mask = div7.accepting_mask
        assert mask[0] and not mask[1:].any()


class TestClassicFactories:
    def test_parity(self):
        p = classic.parity()
        assert p.accepts(b"abab11ba")  # two '1's
        assert not p.accepts(b"1")

    def test_keyword_scanner_finds_overlaps(self):
        d = classic.keyword_scanner(b"aba")
        assert d.accepts(b"xxababa")
        assert not d.accepts(b"ab")

    def test_keyword_scanner_is_sticky(self):
        d = classic.keyword_scanner(b"ab")
        assert d.accepts(b"abzzzzzz")

    def test_cyclic_rotator_never_converges(self):
        r = classic.cyclic_rotator(5, n_symbols=8)
        ends = r.run_all_states(np.array([0, 1, 2], dtype=np.uint8))
        assert np.unique(ends).size == 5

    def test_divisibility_base10(self):
        d = classic.divisibility(3, base=10)
        assert d.accepts(b"123")  # 123 % 3 == 0
        assert not d.accepts(b"124")
