"""Additional regex-compiler robustness: tricky escapes, nesting, and
randomized pattern generation cross-checked against Python's re."""

import re

import numpy as np
import pytest

from repro.automata.regex import compile_regex, parse_regex
from repro.errors import RegexSyntaxError


class TestTrickyPatterns:
    @pytest.mark.parametrize(
        "pattern",
        [
            r"a\{2\}",          # escaped braces are literals
            r"[\x41-\x43]+",    # hex range in a class
            r"(a|)(b|)",        # empty alternation branches
            r"((a))",           # nested groups
            r"a{0,0}b",         # zero-width repeat
            r"[]a]",            # ']' first in a class is a literal
            r"a|a|a",           # duplicate branches
            r"(a{2}){2}",       # nested counted repeats
            r"\.\*\+\?",        # escaped metacharacters
        ],
    )
    def test_differential(self, pattern, rng):
        dfa = compile_regex(pattern, n_symbols=128)
        compiled = re.compile(pattern.encode())
        for _ in range(120):
            s = bytes(
                rng.integers(97, 123, size=int(rng.integers(0, 10))).astype(np.uint8)
            )
            assert dfa.accepts(s) == bool(compiled.search(s)), (pattern, s)

    def test_empty_class_matches_nothing(self, rng):
        # [^\x00-\x7f] over a 128-symbol alphabet is empty.
        dfa = compile_regex(r"a[^\x00-\x7f]b", n_symbols=128)
        for _ in range(60):
            s = bytes(rng.integers(0, 128, size=int(rng.integers(0, 8))).astype(np.uint8))
            assert not dfa.accepts(s)

    def test_large_counted_repeat(self):
        dfa = compile_regex("a{30}", n_symbols=128, minimize=True)
        assert dfa.accepts(b"x" + b"a" * 30)
        assert not dfa.accepts(b"a" * 29)

    def test_deeply_nested_groups(self):
        pattern = "(" * 12 + "a" + ")" * 12
        dfa = compile_regex(pattern, n_symbols=128)
        assert dfa.accepts(b"a")


def random_pattern(rng, depth=0) -> str:
    """Random regex over {a, b, c} with the supported operators."""
    if depth > 3:
        return rng.choice(["a", "b", "c"])
    roll = rng.integers(0, 8)
    if roll <= 2:
        return str(rng.choice(["a", "b", "c"]))
    if roll == 3:
        return random_pattern(rng, depth + 1) + random_pattern(rng, depth + 1)
    if roll == 4:
        return f"({random_pattern(rng, depth + 1)}|{random_pattern(rng, depth + 1)})"
    if roll == 5:
        return f"({random_pattern(rng, depth + 1)})*"
    if roll == 6:
        return f"({random_pattern(rng, depth + 1)})?"
    lo = int(rng.integers(0, 3))
    hi = lo + int(rng.integers(0, 3))
    return f"({random_pattern(rng, depth + 1)}){{{lo},{hi}}}"


@pytest.mark.parametrize("seed", range(25))
def test_random_patterns_against_re(seed):
    rng = np.random.default_rng(seed)
    pattern = random_pattern(rng)
    try:
        dfa = compile_regex(pattern, n_symbols=128)
    except RegexSyntaxError:
        pytest.skip(f"generator produced unsupported pattern {pattern!r}")
    compiled = re.compile(pattern.encode())
    for _ in range(120):
        s = bytes(rng.integers(97, 100, size=int(rng.integers(0, 10))).astype(np.uint8))
        assert dfa.accepts(s) == bool(compiled.search(s)), (pattern, s)


def test_parse_is_pure():
    """Parsing must not mutate module state: same pattern, same AST."""
    a = parse_regex("a(b|c){2,3}")
    b = parse_regex("a(b|c){2,3}")
    assert repr(a) == repr(b)
