"""Bitset-NFA tests: equivalence with set-based NFA simulation."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.automata.bitset import BitsetNFA
from repro.automata.nfa import EPSILON, NFA
from repro.automata.regex import regex_to_nfa


def build_sample_nfa() -> NFA:
    nfa = NFA(n_symbols=4)
    s = [nfa.add_state() for _ in range(5)]
    nfa.start = s[0]
    nfa.add_transition(s[0], 0, s[1])
    nfa.add_transition(s[0], EPSILON, s[2])
    nfa.add_transition(s[1], 1, s[3])
    nfa.add_transition(s[2], 1, s[4])
    nfa.add_transition(s[4], EPSILON, s[3])
    nfa.accepting = {s[3]}
    return nfa


class TestConstruction:
    def test_word_packing(self):
        nfa = NFA(n_symbols=2)
        for _ in range(130):
            nfa.add_state()
        nfa.add_transition(0, 0, 129)
        bs = BitsetNFA.from_nfa(nfa)
        assert bs.n_words == 3
        stepped = bs.step(bs.start_mask, 0)
        assert bs.active_states(stepped).tolist() == [129]

    def test_epsilon_closure_in_start(self):
        bs = BitsetNFA.from_nfa(build_sample_nfa())
        assert set(bs.active_states(bs.start_mask)) == {0, 2}

    def test_accept_through_epsilon(self):
        bs = BitsetNFA.from_nfa(build_sample_nfa())
        # state 4 ε-reaches accepting 3, so 4 must count as accepting.
        assert bs.accepts([1])  # 0 -ε-> 2 -1-> 4 -ε-> 3


class TestEquivalence:
    def test_matches_nfa_on_enumerated_inputs(self):
        nfa = build_sample_nfa()
        bs = BitsetNFA.from_nfa(nfa)
        import itertools

        for length in range(4):
            for seq in itertools.product(range(4), repeat=length):
                assert bs.accepts(list(seq)) == nfa.accepts(list(seq)), seq

    @pytest.mark.parametrize("pattern", ["a(b|c)*d", "(ab)+", "x?y{2,3}"])
    def test_matches_regex_nfa(self, pattern, rng):
        nfa = regex_to_nfa(pattern, n_symbols=128)
        bs = BitsetNFA.from_nfa(nfa)
        for _ in range(100):
            s = rng.integers(97, 123, size=int(rng.integers(0, 12))).astype(np.uint8)
            assert bs.accepts(s) == nfa.accepts(s), s

    def test_run_counting_counts(self):
        bs = BitsetNFA.from_nfa(build_sample_nfa())
        _, counts = bs.run_counting([0, 1])
        assert counts[0] == 2  # {0, 2} active before the first symbol
        assert counts.shape == (2,)

    def test_dead_input(self):
        bs = BitsetNFA.from_nfa(build_sample_nfa())
        assert not bs.run([3, 3]).any()


@st.composite
def random_nfa(draw):
    n = draw(st.integers(min_value=1, max_value=12))
    seed = draw(st.integers(min_value=0, max_value=2**31 - 1))
    rng = np.random.default_rng(seed)
    nfa = NFA(n_symbols=4)
    for _ in range(n):
        nfa.add_state()
    n_edges = int(rng.integers(0, 3 * n + 1))
    for _ in range(n_edges):
        src, dst = int(rng.integers(0, n)), int(rng.integers(0, n))
        sym = int(rng.integers(-1, 4))
        nfa.add_transition(src, EPSILON if sym < 0 else sym, dst)
    nfa.start = 0
    n_acc = int(rng.integers(0, n + 1))
    nfa.accepting = set(rng.choice(n, size=n_acc, replace=False).tolist())
    return nfa, seed


@settings(max_examples=50, deadline=None)
@given(random_nfa())
def test_bitset_equals_set_simulation(case):
    nfa, seed = case
    bs = BitsetNFA.from_nfa(nfa)
    rng = np.random.default_rng(seed)
    for _ in range(10):
        s = rng.integers(0, 4, size=int(rng.integers(0, 10))).astype(np.uint8)
        assert bs.accepts(s) == nfa.accepts(s)
