"""Hopcroft minimization tests: language preservation and minimality."""

import numpy as np

from repro.automata.dfa import DFA
from repro.automata.minimize import minimize_dfa
from repro.automata.regex import compile_regex
from repro.workloads import classic


def language_equal(a: DFA, b: DFA, rng, samples: int = 300, max_len: int = 20) -> bool:
    lo, hi = (97, min(a.n_symbols, 123)) if a.n_symbols > 97 else (0, a.n_symbols)
    for _ in range(samples):
        s = rng.integers(lo, hi, size=int(rng.integers(0, max_len))).astype(np.uint8)
        if a.accepts(s) != b.accepts(s):
            return False
    return True


def test_already_minimal_is_fixed_point(div7, rng):
    m = minimize_dfa(div7)
    assert m.n_states == 7
    assert language_equal(m, div7, rng)


def test_removes_unreachable_states():
    # State 2 is unreachable.
    table = np.array([[1, 0], [0, 1], [2, 2]], dtype=np.int32)
    dfa = DFA(table=table, start=0, accepting={1})
    m = minimize_dfa(dfa)
    assert m.n_states == 2


def test_merges_equivalent_states(rng):
    # Two copies of the same accepting sink are equivalent.
    table = np.array(
        [
            [1, 2],  # start: 'a'->sink1, 'b'->sink2
            [1, 1],
            [2, 2],
        ],
        dtype=np.int32,
    )
    dfa = DFA(table=table, start=0, accepting={1, 2})
    m = minimize_dfa(dfa)
    assert m.n_states == 2
    assert language_equal(m, dfa, rng, max_len=6)


def test_all_states_equivalent_collapses_to_one():
    table = np.array([[1, 1], [0, 0]], dtype=np.int32)
    dfa = DFA(table=table, start=0, accepting=frozenset())
    m = minimize_dfa(dfa)
    assert m.n_states == 1
    assert not m.accepting


def test_all_accepting_collapses_to_one():
    table = np.array([[1, 1], [0, 0]], dtype=np.int32)
    dfa = DFA(table=table, start=0, accepting={0, 1})
    m = minimize_dfa(dfa)
    assert m.n_states == 1
    assert m.accepting == frozenset({0})


def test_minimized_no_larger_and_language_preserved(rng):
    dfa = compile_regex("a(b|c){1,3}d", n_symbols=128, minimize=False)
    m = minimize_dfa(dfa)
    assert m.n_states <= dfa.n_states
    assert language_equal(m, dfa, rng)


def test_minimize_is_idempotent(rng):
    dfa = compile_regex("(ab|cd)+e", n_symbols=128, minimize=False)
    m1 = minimize_dfa(dfa)
    m2 = minimize_dfa(m1)
    assert m1.n_states == m2.n_states
    assert language_equal(m1, m2, rng)


def test_duplicate_columns_fast_path(rng):
    # A 256-symbol scanner: almost all columns identical — exercises the
    # distinct-column reduction path.
    dfa = classic.keyword_scanner(b"abc")
    m = minimize_dfa(dfa)
    assert m.n_symbols == dfa.n_symbols
    assert language_equal(m, dfa, rng)


def test_start_state_is_zero_after_minimize():
    dfa = compile_regex("ab", n_symbols=128, minimize=False)
    m = minimize_dfa(dfa)
    assert m.start == 0
