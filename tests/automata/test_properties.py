"""Tests for FSM property profiling (frequencies, convergence)."""

import numpy as np
import pytest

from repro.automata.properties import (
    absorbing_states,
    convergence_profile,
    profile_state_frequencies,
    reachable_states,
    unique_states_after,
)
from repro.errors import AutomatonError
from repro.workloads import classic


class TestFrequencies:
    def test_counts_sum_to_path_length(self, div7, rng):
        data = bytes(rng.integers(48, 50, size=500).astype(np.uint8))
        prof = profile_state_frequencies(div7, data)
        assert prof.counts.sum() == 501  # path includes the start state
        assert prof.sample_length == 500

    def test_order_is_hottest_first(self, div7, rng):
        data = bytes(rng.integers(48, 50, size=1000).astype(np.uint8))
        prof = profile_state_frequencies(div7, data)
        counts_in_order = prof.counts[prof.order]
        assert (np.diff(counts_in_order) <= 0).all()

    def test_frequencies_normalized(self, div7):
        prof = profile_state_frequencies(div7, b"1010")
        assert prof.frequencies.sum() == pytest.approx(1.0)

    def test_rank_inverts_order(self, div7):
        prof = profile_state_frequencies(div7, b"101101")
        rank = prof.rank_of()
        assert np.array_equal(np.argsort(rank), prof.order)

    def test_hot_states_prefix(self, div7):
        prof = profile_state_frequencies(div7, b"1011")
        assert np.array_equal(prof.hot_states(3), prof.order[:3])

    def test_empty_sample(self, div7):
        prof = profile_state_frequencies(div7, b"")
        assert prof.counts.sum() == 1  # just the start state


class TestConvergence:
    def test_rotator_never_converges(self):
        rot = classic.cyclic_rotator(9, n_symbols=16)
        assert unique_states_after(rot, np.arange(10, dtype=np.uint8) % 16) == 9

    def test_scanner_converges(self):
        d = classic.keyword_scanner(b"abcdef")
        # On a window with no keyword progress all states funnel to root or
        # stay absorbed: exactly two survivors.
        window = b"zzzzzzzzzz"
        assert unique_states_after(d, window) == 2

    def test_steps_argument_truncates(self, div7):
        w = b"1111111111"
        full = unique_states_after(div7, w)
        assert unique_states_after(div7, w, steps=0) == 7
        assert full <= 7

    def test_convergence_profile_shape(self, div7, rng):
        data = bytes(rng.integers(48, 50, size=400).astype(np.uint8))
        prof = convergence_profile(div7, data, steps=10, n_windows=8)
        assert prof.shape == (8,)
        assert (prof >= 1).all() and (prof <= 7).all()

    def test_convergence_profile_deterministic(self, div7, rng):
        data = bytes(rng.integers(48, 50, size=400).astype(np.uint8))
        a = convergence_profile(div7, data, seed=3)
        b = convergence_profile(div7, data, seed=3)
        assert np.array_equal(a, b)

    def test_too_short_input_raises(self, div7):
        with pytest.raises(AutomatonError):
            convergence_profile(div7, b"101", steps=10)


class TestStructure:
    def test_reachable_states_full(self, div7):
        assert reachable_states(div7).size == 7

    def test_reachable_states_partial(self):
        import numpy as np
        from repro.automata.dfa import DFA

        table = np.array([[0, 0], [1, 1]], dtype=np.int32)
        dfa = DFA(table=table, start=0)
        assert reachable_states(dfa).tolist() == [0]

    def test_absorbing_states_of_scanner(self):
        d = classic.keyword_scanner(b"ab")
        acc = absorbing_states(d)
        assert set(acc.tolist()) == set(d.accepting)
