"""Moore-minimization tests + Hopcroft cross-checks."""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.automata.dfa import DFA
from repro.automata.minimize import minimize_dfa
from repro.automata.moore import minimize_dfa_moore
from repro.automata.regex import compile_regex


def test_div7_already_minimal(div7):
    assert minimize_dfa_moore(div7).n_states == 7


def test_merges_equivalent_states():
    table = np.array([[1, 2], [1, 1], [2, 2]], dtype=np.int32)
    dfa = DFA(table=table, start=0, accepting={1, 2})
    assert minimize_dfa_moore(dfa).n_states == 2


def test_language_preserved(rng):
    dfa = compile_regex("a(b|c){1,3}d", n_symbols=128, minimize=False)
    m = minimize_dfa_moore(dfa)
    for _ in range(200):
        s = bytes(rng.integers(97, 123, size=int(rng.integers(0, 12))).astype(np.uint8))
        assert m.accepts(s) == dfa.accepts(s)


def test_agrees_with_hopcroft_on_scanner(scanner_dfa):
    assert minimize_dfa_moore(scanner_dfa).n_states == minimize_dfa(scanner_dfa).n_states


@st.composite
def random_dfa(draw):
    n = draw(st.integers(min_value=1, max_value=14))
    seed = draw(st.integers(min_value=0, max_value=2**31 - 1))
    rng = np.random.default_rng(seed)
    table = rng.integers(0, n, size=(n, 6)).astype(np.int32)
    n_acc = draw(st.integers(min_value=0, max_value=n))
    accepting = frozenset(rng.choice(n, size=n_acc, replace=False).tolist())
    return DFA(table=table, start=0, accepting=accepting)


@settings(max_examples=60, deadline=None)
@given(random_dfa())
def test_moore_and_hopcroft_agree(dfa):
    """The two independent minimizers must produce identically-sized
    automata on arbitrary DFAs (the strongest cheap equivalence check)."""
    a = minimize_dfa(dfa)
    b = minimize_dfa_moore(dfa)
    assert a.n_states == b.n_states


@settings(max_examples=30, deadline=None)
@given(random_dfa(), st.integers(min_value=0, max_value=2**31 - 1))
def test_moore_language_equivalence(dfa, seed):
    m = minimize_dfa_moore(dfa)
    rng = np.random.default_rng(seed)
    for _ in range(20):
        s = rng.integers(0, 6, size=int(rng.integers(0, 15))).astype(np.uint8)
        assert m.accepts(s) == dfa.accepts(s)
