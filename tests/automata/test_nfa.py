"""NFA simulation, union, and subset-construction tests."""

import numpy as np
import pytest

from repro.automata.nfa import EPSILON, NFA, nfa_to_dfa, symbol_classes, union_nfas
from repro.errors import AutomatonError


def build_ab_or_b() -> NFA:
    """NFA accepting 'ab' or 'b' (with an ε split)."""
    nfa = NFA(n_symbols=4)
    s0, s1, s2, s3 = (nfa.add_state() for _ in range(4))
    nfa.start = s0
    nfa.add_transition(s0, 0, s1)  # a
    nfa.add_transition(s1, 1, s2)  # b
    nfa.add_transition(s0, EPSILON, s3)
    nfa.add_transition(s3, 1, s2)  # b
    nfa.accepting = {s2}
    return nfa


class TestSimulation:
    def test_accepts(self):
        nfa = build_ab_or_b()
        assert nfa.accepts([0, 1])
        assert nfa.accepts([1])
        assert not nfa.accepts([0])
        assert not nfa.accepts([0, 1, 1])

    def test_epsilon_closure(self):
        nfa = build_ab_or_b()
        closure = nfa.epsilon_closure([nfa.start])
        assert nfa.start in closure
        assert 3 in closure

    def test_move(self):
        nfa = build_ab_or_b()
        assert nfa.move([0], 0) == {1}
        assert nfa.move([0, 3], 1) == {2}

    def test_dead_input_empties_active_set(self):
        nfa = build_ab_or_b()
        assert nfa.run([3, 3]) == frozenset()

    def test_add_transition_validates(self):
        nfa = NFA(n_symbols=2)
        nfa.add_state()
        with pytest.raises(AutomatonError):
            nfa.add_transition(0, 5, 0)
        with pytest.raises(AutomatonError):
            nfa.add_transition(0, 0, 7)

    def test_sticky_accepting(self):
        nfa = build_ab_or_b()
        nfa.make_accepting_sticky()
        assert nfa.accepts([1, 3, 3, 0])


class TestSubsetConstruction:
    def test_equivalence_on_all_short_strings(self):
        nfa = build_ab_or_b()
        dfa = nfa_to_dfa(nfa)
        import itertools

        for length in range(4):
            for s in itertools.product(range(4), repeat=length):
                assert dfa.accepts(list(s)) == nfa.accepts(list(s)), s

    def test_result_is_complete(self):
        dfa = nfa_to_dfa(build_ab_or_b())
        assert (dfa.table >= 0).all() and (dfa.table < dfa.n_states).all()

    def test_max_states_guard(self):
        nfa = build_ab_or_b()
        with pytest.raises(AutomatonError):
            nfa_to_dfa(nfa, max_states=1)

    def test_max_states_guard_is_structured(self):
        nfa = build_ab_or_b()
        nfa.name = "ab-or-b"
        with pytest.raises(AutomatonError) as excinfo:
            nfa_to_dfa(nfa, max_states=1)
        err = excinfo.value
        assert err.limit == 1
        assert err.state_count is not None and err.state_count > err.limit
        assert err.automaton == "ab-or-b"
        assert str(err.state_count) in str(err)
        assert "limit 1" in str(err)

    def test_start_is_zero(self):
        assert nfa_to_dfa(build_ab_or_b()).start == 0


class TestSymbolClasses:
    def test_partition_covers_alphabet(self):
        nfa = build_ab_or_b()
        classes = symbol_classes(nfa)
        all_syms = sorted(s for cls in classes for s in cls)
        assert all_syms == list(range(4))

    def test_unused_symbols_grouped(self):
        nfa = build_ab_or_b()
        classes = symbol_classes(nfa)
        # Symbols 2 and 3 appear nowhere: same class.
        for cls in classes:
            if 2 in cls:
                assert 3 in cls

    def test_classes_equivalent_in_dfa(self):
        nfa = build_ab_or_b()
        dfa = nfa_to_dfa(nfa)
        assert np.array_equal(dfa.table[:, 2], dfa.table[:, 3])


class TestUnion:
    def test_union_accepts_either(self):
        a = build_ab_or_b()
        b = NFA(n_symbols=4)
        s0, s1 = b.add_state(), b.add_state()
        b.start = s0
        b.add_transition(s0, 2, s1)
        b.accepting = {s1}
        u = union_nfas([a, b])
        assert u.accepts([1])
        assert u.accepts([2])
        assert not u.accepts([3])

    def test_union_requires_nfas(self):
        with pytest.raises(AutomatonError):
            union_nfas([])

    def test_union_alphabet_mismatch(self):
        a = NFA(n_symbols=2)
        a.add_state()
        b = NFA(n_symbols=3)
        b.add_state()
        with pytest.raises(AutomatonError):
            union_nfas([a, b])
