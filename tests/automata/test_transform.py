"""Frequency-based DFA transformation tests (paper Fig. 4)."""

import numpy as np
import pytest

from repro.automata.properties import profile_state_frequencies
from repro.automata.transform import frequency_transform, hot_access_fraction
from repro.errors import AutomatonError
from repro.workloads import classic


@pytest.fixture()
def transformed(div7, rng):
    data = bytes(rng.integers(48, 50, size=2000).astype(np.uint8))
    return data, frequency_transform(div7, training_input=data)


def test_semantics_preserved(div7, transformed, rng):
    data, t = transformed
    test_data = bytes(rng.integers(48, 50, size=500).astype(np.uint8))
    assert t.dfa.accepts(test_data) == div7.accepts(test_data)


def test_state_zero_is_hottest(div7, transformed):
    data, t = transformed
    prof = profile_state_frequencies(div7, data)
    hottest_old = int(prof.order[0])
    assert t.map_state_to_new(hottest_old) == 0


def test_mapping_roundtrip(div7, transformed):
    _, t = transformed
    for q in range(div7.n_states):
        assert t.map_state_to_old(t.map_state_to_new(q)) == q
    assert np.array_equal(t.to_old[t.to_new], np.arange(div7.n_states))


def test_hot_check_is_plain_compare(transformed):
    _, t = transformed
    assert t.is_hot(0)
    assert t.is_hot(t.hot_state_count - 1)
    if t.hot_state_count < t.dfa.n_states:
        assert not t.is_hot(t.hot_state_count)


def test_hot_capacity_from_shared_entries(div7, rng):
    data = bytes(rng.integers(48, 50, size=500).astype(np.uint8))
    t = frequency_transform(div7, training_input=data, shared_memory_entries=3 * 256)
    assert t.hot_state_count == 3
    assert t.hot_fraction == pytest.approx(3 / 7)


def test_transform_needs_profile_or_input(div7):
    with pytest.raises(AutomatonError):
        frequency_transform(div7)


def test_profile_state_count_mismatch(div7, rng):
    other = classic.parity()
    prof = profile_state_frequencies(other, b"11")
    with pytest.raises(AutomatonError):
        frequency_transform(div7, prof)


def test_hot_access_fraction_on_training_data(div7, rng):
    """On the training distribution, accesses concentrate on the hot prefix."""
    data = bytes(rng.integers(48, 50, size=4000).astype(np.uint8))
    t = frequency_transform(div7, training_input=data, shared_memory_entries=4 * 256)
    frac = hot_access_fraction(t, data)
    prof = profile_state_frequencies(div7, data)
    mass = prof.frequencies[prof.order[:4]].sum()
    assert frac == pytest.approx(mass, abs=0.02)


def test_paper_fig4_example():
    """The 4-state DFA of Fig. 4: states re-ranked by frequency."""
    from repro.automata.dfa import DFA

    # Symbols: 0='/', 1='*', 2='X' (comment-scanner flavour).
    table = np.array(
        [
            [1, 0, 0],  # S0
            [1, 2, 0],  # S1
            [2, 3, 2],  # S2
            [0, 3, 2],  # S3
        ],
        dtype=np.int32,
    )
    dfa = DFA(table=table, start=0, accepting={0}, name="fig4")
    # Frequencies from the paper: S0=4, S1=4, S2=2, S3=2 — feed a profile
    # that visits S0/S1 twice as often.
    from repro.automata.properties import StateFrequencyProfile

    counts = np.array([4, 4, 2, 2])
    order = np.lexsort((np.arange(4), -counts))
    prof = StateFrequencyProfile(counts=counts, order=order, sample_length=12)
    t = frequency_transform(dfa, prof, shared_memory_entries=2 * 3)
    assert t.hot_state_count == 2
    # S0 and S1 keep ranks 0 and 1 (already hottest).
    assert t.map_state_to_new(0) == 0
    assert t.map_state_to_new(1) == 1
    # Transformed semantics match on a sample.
    for stream in ([0, 1, 2], [1, 1, 0, 2], [0, 0, 0]):
        a = dfa.run(stream)
        b = t.dfa.run(stream)
        assert t.map_state_to_old(b) == a
