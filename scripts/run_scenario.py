#!/usr/bin/env python
"""Run a seeded traffic scenario through the TCP gateway, gated for CI.

Loads a builtin scenario (``smoke`` / ``capacity`` / ``bursty-mix``) or a
YAML/JSON scenario file, drives it over real localhost sockets with a
fleet of asyncio clients, audits every closed stream against the
``dfa.run`` oracle, writes one JSONL line per request, and holds the run
to the scenario's regression gates (p99 open/feed latency, throughput,
reject rate).  Exits non-zero on any oracle mismatch, worker error,
revise-thread straggler, or gate violation.  Same engine as
``repro scenario`` (`repro.scenarios.run_scenario`).

CI runs the builtins seeded on both backends with ``REPRO_SELFCHECK=1``
so every segment additionally passes the runtime invariant audits::

    PYTHONPATH=src REPRO_SELFCHECK=1 python scripts/run_scenario.py \\
        smoke --backend fast --out results/smoke-fast.jsonl
"""

from __future__ import annotations

import argparse
import sys


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "scenario",
        help="builtin scenario name or a YAML/JSON scenario file",
    )
    parser.add_argument(
        "--host",
        default=None,
        help="target an already-running gateway instead of an embedded one",
    )
    parser.add_argument("--port", type=int, default=None)
    parser.add_argument(
        "--backend",
        choices=("sim", "fast"),
        default=None,
        help="override the scenario's execution backend",
    )
    parser.add_argument(
        "--seed", type=int, default=None, help="override the scenario's seed"
    )
    parser.add_argument(
        "--out",
        default=None,
        metavar="JSONL",
        help="write one JSON line per request",
    )
    args = parser.parse_args(argv)

    from repro.scenarios import (
        BUILTIN_SCENARIOS,
        builtin_scenario,
        load_scenario,
        run_scenario,
    )

    if args.scenario in BUILTIN_SCENARIOS:
        scenario = builtin_scenario(args.scenario)
    else:
        scenario = load_scenario(args.scenario)
    overrides = {}
    if args.backend is not None:
        overrides["backend"] = args.backend
    if args.seed is not None:
        overrides["seed"] = args.seed
    if overrides:
        scenario = scenario.replace(**overrides)

    report = run_scenario(
        scenario,
        host=args.host,
        port=args.port,
        out_path=args.out,
        log=print,
    )
    return 0 if report.ok else 1


if __name__ == "__main__":
    sys.exit(main())
