#!/usr/bin/env python
"""Stress the serving tier and audit it against the sequential oracle.

Drives M worker threads of interleaved open/feed/close traffic over K
distinct automata through one shared PlanCache + MatcherPool, then checks
that every closed stream's final state matches ``dfa.run`` over exactly
the bytes it was fed, that the cache compiled once per fingerprint, and
that no summary was lost or duplicated.  Same engine as ``repro stress``
(`repro.serving.stress.run_stress`); exits non-zero on any violation.

CI runs this seeded on both backends with ``REPRO_SELFCHECK=1`` so every
segment additionally passes the runtime invariant audits::

    PYTHONPATH=src REPRO_SELFCHECK=1 python scripts/stress_serving.py \\
        --threads 8 --fingerprints 4 --ops 400 --seed 1 --backend fast
"""

from __future__ import annotations

import argparse
import sys


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--threads", type=int, default=8)
    parser.add_argument("--fingerprints", type=int, default=4)
    parser.add_argument(
        "--ops",
        type=int,
        default=400,
        help="total operations (open/feed/close) split across the threads",
    )
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument(
        "--backend",
        choices=("sim", "fast"),
        default=None,
        help="execution backend for every matcher ($REPRO_BACKEND default)",
    )
    parser.add_argument(
        "--selfcheck",
        action="store_true",
        help="force the runtime invariant audits on for every segment",
    )
    parser.add_argument(
        "--fused",
        action="store_true",
        help="enable gang scheduling: workers batch feeds through feed_many",
    )
    parser.add_argument(
        "--capacity", type=int, default=None, help="plan-cache capacity"
    )
    parser.add_argument(
        "--max-streams", type=int, default=None, help="pool admission bound"
    )
    parser.add_argument(
        "--equivalent-mix",
        action="store_true",
        help="tenants submit language-equivalent DFA variants; audits one "
        "compile (and one spill file) per language class",
    )
    parser.add_argument(
        "--drift",
        action="store_true",
        help="two-phase traffic that collapses live speculation accuracy "
        "mid-run; audits the background revise + hot-swap path",
    )
    parser.add_argument(
        "--variants",
        type=int,
        default=3,
        help="language-equivalent variants per class (equivalent mix only)",
    )
    parser.add_argument(
        "--spill-dir",
        default=None,
        metavar="DIR",
        help="plan-cache spill directory (audited in the equivalent mix)",
    )
    args = parser.parse_args(argv)

    from repro.serving.stress import run_stress

    report = run_stress(
        threads=args.threads,
        fingerprints=args.fingerprints,
        operations=args.ops,
        seed=args.seed,
        backend=args.backend,
        selfcheck=True if args.selfcheck else None,
        fused=args.fused,
        capacity=args.capacity,
        max_streams=args.max_streams,
        equivalent_mix=args.equivalent_mix,
        drift=args.drift,
        variants=args.variants,
        spill_dir=args.spill_dir,
        log=print,
    )
    return 0 if report.ok else 1


if __name__ == "__main__":
    sys.exit(main())
