#!/usr/bin/env python
"""Cross-process plan round-trip check (CI acceptance gate).

Phase 1 (``compile``): compile a suite member's plan and write it to disk,
alongside the in-process reference answers (scheme, end state, accepts, and
the cycle figure on the sim backend).

Phase 2 (``serve``): in a *fresh* process, reload the plan, serve it via
``GSpecPal.from_plan`` on both backends, and cross-check against the
recorded reference — proving the artifact carries everything the online
phase needs and nothing drifted through serialization.

Usage (what CI runs)::

    python scripts/check_plan_roundtrip.py compile /tmp/plan-check
    python scripts/check_plan_roundtrip.py serve   /tmp/plan-check
"""

from __future__ import annotations

import json
import math
import sys
from pathlib import Path

from repro.framework import GSpecPal, GSpecPalConfig
from repro.observability import Tracer
from repro.plan import compile_plan, load_plan, save_plan
from repro.workloads.suites import build_member

MEMBERS = (("snort", 1), ("poweren", 3))
INPUT_LENGTH = 8_192
TRAINING_LENGTH = 2_048
N_THREADS = 64
BACKENDS = ("sim", "fast")


def _setup(suite: str, index: int):
    member = build_member(suite, index)
    training = member.training_input(TRAINING_LENGTH)
    data = member.generate_input(INPUT_LENGTH, seed=0)
    return member, training, data


def do_compile(out_dir: Path) -> int:
    out_dir.mkdir(parents=True, exist_ok=True)
    manifest = {}
    for suite, index in MEMBERS:
        member, training, data = _setup(suite, index)
        config = GSpecPalConfig(n_threads=N_THREADS)
        plan = compile_plan(member.dfa, training, config)
        path = save_plan(plan, out_dir / f"{suite}{index}.npz")
        reference = {}
        for backend in BACKENDS:
            pal = GSpecPal.from_plan(plan, backend=backend)
            result = pal.run(data)
            reference[backend] = {
                "scheme": result.scheme,
                "end_state": int(result.end_state),
                "accepts": bool(result.accepts),
                "cycles": None if math.isnan(result.cycles) else result.cycles,
            }
        manifest[f"{suite}{index}"] = {
            "plan": path.name,
            "fingerprint": plan.fingerprint,
            "selected": plan.scheme,
            "reference": reference,
        }
        print(f"compiled {suite}{index}: scheme={plan.scheme} "
              f"fingerprint={plan.fingerprint[:12]}…")
    (out_dir / "manifest.json").write_text(json.dumps(manifest, indent=2))
    return 0


def do_serve(out_dir: Path) -> int:
    manifest = json.loads((out_dir / "manifest.json").read_text())
    failures = []
    for (suite, index) in MEMBERS:
        key = f"{suite}{index}"
        entry = manifest[key]
        member, _, data = _setup(suite, index)
        plan = load_plan(out_dir / entry["plan"])
        plan.verify(member.dfa)
        if plan.fingerprint != entry["fingerprint"]:
            failures.append(f"{key}: fingerprint drifted through serialization")
            continue
        for backend in BACKENDS:
            tracer = Tracer()
            pal = GSpecPal.from_plan(plan, backend=backend, tracer=tracer)
            result = pal.run(data)
            spans = [s.name for s in tracer.iter_spans()]
            ref = entry["reference"][backend]
            checks = {
                "no profile span": "profile" not in spans,
                "scheme": result.scheme == ref["scheme"],
                "end_state": int(result.end_state) == ref["end_state"],
                "accepts": bool(result.accepts) == ref["accepts"],
            }
            if ref["cycles"] is not None:
                checks["cycles"] = result.cycles == ref["cycles"]
            bad = [name for name, ok in checks.items() if not ok]
            if bad:
                failures.append(f"{key}/{backend}: mismatch on {', '.join(bad)}")
            else:
                print(f"served {key}/{backend}: OK "
                      f"(scheme={result.scheme}, end_state={result.end_state})")
    if failures:
        for line in failures:
            print(f"FAIL {line}", file=sys.stderr)
        return 1
    print("plan round-trip: all cross-process checks passed")
    return 0


def main(argv) -> int:
    if len(argv) != 3 or argv[1] not in ("compile", "serve"):
        print(__doc__, file=sys.stderr)
        return 2
    out_dir = Path(argv[2])
    return do_compile(out_dir) if argv[1] == "compile" else do_serve(out_dir)


if __name__ == "__main__":
    sys.exit(main(sys.argv))
